//! Algorithm traits implemented across the workspace.
//!
//! Two views of a scheduling algorithm coexist:
//!
//! * [`Scheduler`] — the *batch* view: map a complete [`Instance`] to a
//!   [`Schedule`].  Offline algorithms (YDS, brute force, the convex
//!   solver) implement this directly.
//! * [`OnlineScheduler`] / [`OnlineAlgorithm`] — the *event-driven* view:
//!   jobs arrive one at a time via [`OnlineScheduler::on_arrival`] (or as
//!   simultaneous bursts via [`OnlineScheduler::on_arrivals`], which is
//!   observably equivalent but lets implementations share the per-burst
//!   work), every decision is made with only the jobs released so far, and
//!   the already-committed past ([`OnlineScheduler::frontier`]) is never
//!   revised.  All online algorithms in the workspace (PD, OA, qOA,
//!   multiprocessor OA, AVR, BKP, CLL) implement this pair, and a blanket
//!   adapter recovers their batch [`Scheduler`] impl, so the experiment
//!   harness can keep treating every algorithm uniformly.

use crate::error::ScheduleError;
use crate::instance::Instance;
use crate::job::Job;
use crate::segment::Schedule;

/// A scheduling algorithm that maps an instance to a schedule.
///
/// Both offline algorithms (YDS, brute force, the convex-program solver) and
/// online algorithms implement this trait (the latter through the blanket
/// adapter over [`OnlineAlgorithm`]); it is what the experiment harness and
/// the simulator consume.
pub trait Scheduler {
    /// Human-readable name used in experiment tables (e.g. `"PD"`, `"OA"`,
    /// `"YDS"`).
    fn name(&self) -> String;

    /// Computes a schedule for the instance.
    ///
    /// Implementations must return a schedule over `instance.machines`
    /// machines whose segments respect the availability windows of the jobs
    /// they process; [`validate_schedule`](crate::validate::validate_schedule)
    /// checks this.
    fn schedule(&self, instance: &Instance) -> Result<Schedule, ScheduleError>;
}

/// The outcome of one [`OnlineScheduler::on_arrival`] event.
///
/// # Dual-value convention
///
/// Every online algorithm in the workspace follows one convention for the
/// `dual` field, constructed through [`Decision::accept`] /
/// [`Decision::reject`]:
///
/// * **accepted** — `dual` is the dual variable `λ_j` the algorithm
///   associates with the job (for the paper's primal-dual algorithm the
///   water level `δ·∂P_k/∂x_{jk}` reached by the fill).  Algorithms without
///   a dual interpretation (OA, qOA, OA(m), AVR, BKP, CLL) report `0.0`.
/// * **rejected** — `dual` is always the job's value `v_j` (the lost value
///   paid by the objective), for *every* algorithm.  This matches the
///   paper's Listing 1 (`λ_j = v_j` on rejection) and makes
///   `Σ_rejected dual` the lost-value part of the cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Whether the algorithm committed to finishing the job.  Rejected jobs
    /// are permanently lost (their value is paid instead of energy).
    pub accepted: bool,
    /// The dual value `λ_j` of the job under the convention above: the
    /// algorithm's dual variable (or `0`) when accepted, the job's value
    /// when rejected.
    pub dual: f64,
}

impl Decision {
    /// An acceptance with the given dual value.
    pub fn accept(dual: f64) -> Self {
        Self {
            accepted: true,
            dual,
        }
    }

    /// A rejection; `lost_value` (the job's value) becomes the dual value.
    pub fn reject(lost_value: f64) -> Self {
        Self {
            accepted: false,
            dual: lost_value,
        }
    }
}

/// Folds one decision into a rolling dual-price EWMA — the shared pricing
/// rule of the serving daemon's `feed_batch` and the sharded simulator
/// (one implementation so replay, recovery and the drift oracle agree to
/// the bit).
///
/// * **Accepted** — the marginal price `λ_j` folds symmetrically:
///   `p ← (1-β)·p + β·λ_j`.  Cheap capacity pulls the price down.
/// * **Rejected** — a rejection of value `v_j` is one-sided evidence: the
///   shard's clearing price exceeds `v_j`, so the price folds `v_j` only
///   **upward** (`v_j > p`), and a rejection *below* the current price
///   leaves it bit-unchanged.  Folding cheap rejections symmetrically
///   would *lower* the price — claiming the shard got cheaper because it
///   turned away a cheap job — which makes a rejection-dominated shard a
///   magnet for cheapest-price routing (runs of consecutive cheap
///   rejections hold its EWMA at the bottom of the fleet).
///
/// The caller guarantees decision-free batches never reach this fold, so
/// a batch with no decisions leaves the price bit-unchanged and the
/// signal is never NaN for finite inputs.
pub fn fold_price(price: f64, smoothing: f64, decision: &Decision) -> f64 {
    if decision.accepted || decision.dual > price {
        (1.0 - smoothing) * price + smoothing * decision.dual
    } else {
        price
    }
}

/// One *run* of an event-driven online algorithm.
///
/// A run is stateful: jobs are fed one at a time, in nondecreasing release
/// order, via [`on_arrival`](Self::on_arrival).  The online information
/// model is structural: a run only ever sees jobs that have been fed to it,
/// so it cannot base decisions on the future.  The complementary property —
/// the *past* is never revised — is exposed through
/// [`frontier`](Self::frontier) and verified operationally by the streaming
/// replay harness in the `pss-sim` crate (`replay` module).
///
/// Runs are created by [`OnlineAlgorithm::start`]; the blanket adapter
/// `impl<A: OnlineAlgorithm> Scheduler for A` drives a fresh run over a
/// whole instance via [`run_online`].
pub trait OnlineScheduler {
    /// Feeds the next arriving job at time `now` and returns the
    /// accept/reject decision together with the job's dual value.
    ///
    /// `now` must be nondecreasing across calls and at least the run's
    /// previous arrival time; implementations return an error on
    /// out-of-order feeds.  Typically `now == job.release`.
    fn on_arrival(&mut self, job: &Job, now: f64) -> Result<Decision, ScheduleError>;

    /// Feeds a *burst* of simultaneous arrivals at time `now` and returns
    /// one decision per job, in slice order.
    ///
    /// # Contract
    ///
    /// * Every job in `jobs` arrives at the same instant `now` (each job's
    ///   release may precede `now`, exactly as for
    ///   [`on_arrival`](Self::on_arrival); the per-job ingress checks of
    ///   [`check_arrival`] still apply, so a job more than
    ///   [`ARRIVAL_ORDER_TOLERANCE`] *after* `now` is rejected with an
    ///   error).
    /// * Jobs are processed **in slice order**: admission rules that
    ///   consult the pending set see the burst's earlier jobs already
    ///   admitted, exactly as if the slice had been fed job by job.
    /// * The method is **observably equivalent** to looping
    ///   [`on_arrival`](Self::on_arrival) over the slice at the same `now`:
    ///   same decisions and duals, same frontier, same final schedule.  The
    ///   default implementation *is* that loop; specialised
    ///   implementations only collapse shared per-burst work (one replan,
    ///   one index merge, one partition update for the whole burst instead
    ///   of one per job) — the burst-equivalence integration tests
    ///   (`tests/incremental_equivalence.rs`) pin this for every algorithm
    ///   in the workspace.
    /// * On error the run may have ingested a prefix of the burst; like an
    ///   [`on_arrival`](Self::on_arrival) error, the run should be
    ///   discarded.
    ///
    /// An empty burst is a no-op returning an empty vector (in particular
    /// it does not advance the run's clock).
    fn on_arrivals(&mut self, jobs: &[Job], now: f64) -> Result<Vec<Decision>, ScheduleError> {
        jobs.iter().map(|job| self.on_arrival(job, now)).collect()
    }

    /// The committed *frontier*: the partial schedule for the past (times
    /// `< now`) that the run guarantees never to revise.  It grows
    /// monotonically as arrivals are processed and, once
    /// [`finish`](Self::finish) is called, coincides with the final
    /// schedule on every already-committed time range.
    fn frontier(&self) -> &Schedule;

    /// Consumes the run and returns the complete schedule (the committed
    /// frontier extended to the end of the horizon of the released jobs).
    fn finish(self) -> Result<Schedule, ScheduleError>
    where
        Self: Sized;
}

/// An online algorithm: a (cheaply copyable) configuration able to start
/// fresh event-driven runs.
///
/// Implementing this trait is all an online algorithm needs to do; the
/// blanket impl `impl<A: OnlineAlgorithm> Scheduler for A` recovers the
/// batch interface by replaying an instance's arrival sequence through a
/// fresh run, so the experiment harness, metrics and simulator keep working
/// unchanged.
pub trait OnlineAlgorithm {
    /// The run state this algorithm produces.
    type Run: OnlineScheduler;

    /// Human-readable name used in experiment tables (e.g. `"PD"`, `"OA"`).
    fn algorithm_name(&self) -> String;

    /// Starts a fresh run for `machines` machines and energy exponent
    /// `alpha`, before any job is known.
    fn start(&self, machines: usize, alpha: f64) -> Result<Self::Run, ScheduleError>;

    /// Starts a fresh run for an instance's static parameters.
    ///
    /// The default forwards to [`start`](Self::start) with the instance's
    /// machine count and `α`.  Algorithms whose *discretisation* (not their
    /// decisions) depends on static instance metadata — BKP evaluates its
    /// speed expression on a uniform time grid over the horizon — override
    /// this to pick the grid; they still learn about individual jobs only
    /// through [`OnlineScheduler::on_arrival`].
    fn start_for(&self, instance: &Instance) -> Result<Self::Run, ScheduleError> {
        self.start(instance.machines, instance.alpha)
    }
}

/// Tolerance of the arrival-time contract checks: times closer than this
/// are treated as simultaneous, and a job may be fed at most this much
/// before its nominal release.  All `on_arrival` implementations in the
/// workspace share this single constant (via [`check_arrival`] /
/// [`check_arrival_order`]).
///
/// Producers that cannot honour the contract (concurrent tenants racing
/// far beyond this tolerance) go through the serving layer, whose
/// release-floor clamp restores monotone feed order; the chaos suite
/// submits adversarially shuffled waves to pin that the clamp replays
/// bit-identically.
pub const ARRIVAL_ORDER_TOLERANCE: f64 = 1e-9;

/// Checks the nondecreasing-arrival-time contract of
/// [`OnlineScheduler::on_arrival`]: `now` may not lie (more than
/// [`ARRIVAL_ORDER_TOLERANCE`]) before the previous arrival time.  Every run
/// implementation in the workspace routes its ordering check through this
/// helper so the tolerance and error wording stay in one place.
pub fn check_arrival_order(previous: f64, now: f64) -> Result<(), ScheduleError> {
    if now < previous - ARRIVAL_ORDER_TOLERANCE {
        return Err(ScheduleError::Internal(format!(
            "jobs must arrive in release order: got time {now} after {previous}"
        )));
    }
    Ok(())
}

/// The full ingress check shared by every `on_arrival` implementation:
///
/// 1. the job's fields are finite and well-formed ([`Job::validate`]) —
///    validating once at ingress is what lets the numeric code downstream
///    sort with [`f64::total_cmp`] instead of panicking on NaN,
/// 2. the job is not fed before its release time (more than
///    [`ARRIVAL_ORDER_TOLERANCE`] early),
/// 3. arrival times are nondecreasing ([`check_arrival_order`]).
///
/// `previous` is the run's last arrival time (`f64::NEG_INFINITY` before the
/// first arrival).
pub fn check_arrival(job: &Job, previous: f64, now: f64) -> Result<(), ScheduleError> {
    job.validate()
        .map_err(|e| ScheduleError::Internal(e.to_string()))?;
    if now < job.release - ARRIVAL_ORDER_TOLERANCE {
        return Err(ScheduleError::Internal(format!(
            "job {} fed before its release time ({} < {})",
            job.id, now, job.release
        )));
    }
    check_arrival_order(previous, now)
}

/// Drives a fresh run of `algo` over the whole instance, feeding jobs in
/// arrival order (release time, ties by id) and finishing the run.
///
/// This is the batch adapter used by the blanket [`Scheduler`] impl for
/// online algorithms; the streaming simulator and replay harness in
/// `pss-sim` provide richer drivers (per-event metrics, frontier-stability
/// checks) around the same trait.
pub fn run_online<A: OnlineAlgorithm + ?Sized>(
    algo: &A,
    instance: &Instance,
) -> Result<Schedule, ScheduleError> {
    let mut run = algo.start_for(instance)?;
    for id in instance.arrival_order() {
        let job = instance.job(id);
        run.on_arrival(job, job.release)?;
    }
    run.finish()
}

impl<A: OnlineAlgorithm> Scheduler for A {
    fn name(&self) -> String {
        self.algorithm_name()
    }

    fn schedule(&self, instance: &Instance) -> Result<Schedule, ScheduleError> {
        run_online(self, instance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::segment::Segment;

    struct Noop;

    impl Scheduler for Noop {
        fn name(&self) -> String {
            "noop".into()
        }

        fn schedule(&self, instance: &Instance) -> Result<Schedule, ScheduleError> {
            Ok(Schedule::empty(instance.machines))
        }
    }

    /// A tiny online algorithm used to exercise the adapter: every job runs
    /// at its own density over its whole window on machine 0.
    struct Density;

    struct DensityRun {
        committed: Schedule,
        pending: Vec<Job>,
        now: f64,
    }

    impl DensityRun {
        fn commit_to(&mut self, to: f64) {
            // Commit the part of every known job's density segment that has
            // elapsed; jobs only extend into the future, so this never
            // revises the past.
            for job in &self.pending {
                let from = job.release.max(self.now);
                let until = job.deadline.min(to);
                if until > from {
                    self.committed
                        .push(Segment::work(0, from, until, job.density(), job.id));
                }
            }
            self.now = self.now.max(to);
        }
    }

    impl OnlineScheduler for DensityRun {
        fn on_arrival(&mut self, job: &Job, now: f64) -> Result<Decision, ScheduleError> {
            if now < self.now {
                return Err(ScheduleError::Internal("out of order arrival".into()));
            }
            self.commit_to(now);
            self.pending.push(*job);
            Ok(Decision::accept(0.0))
        }

        fn frontier(&self) -> &Schedule {
            &self.committed
        }

        fn finish(mut self) -> Result<Schedule, ScheduleError> {
            let end = self
                .pending
                .iter()
                .map(|j| j.deadline)
                .fold(self.now, f64::max);
            self.commit_to(end);
            Ok(self.committed)
        }
    }

    impl OnlineAlgorithm for Density {
        type Run = DensityRun;

        fn algorithm_name(&self) -> String {
            "density".into()
        }

        fn start(&self, machines: usize, _alpha: f64) -> Result<Self::Run, ScheduleError> {
            Ok(DensityRun {
                committed: Schedule::empty(machines),
                pending: Vec::new(),
                now: f64::NEG_INFINITY,
            })
        }
    }

    #[test]
    fn batch_scheduler_works_through_trait_objects() {
        let inst = Instance::from_tuples(1, 2.0, vec![(0.0, 1.0, 1.0, 1.0)]).unwrap();
        let by_ref: &dyn Scheduler = &Noop;
        assert_eq!(by_ref.name(), "noop");
        assert!(by_ref.schedule(&inst).is_ok());
        let boxed: Box<dyn Scheduler> = Box::new(Noop);
        assert_eq!(boxed.name(), "noop");
        assert!(boxed.schedule(&inst).unwrap().segments.is_empty());
    }

    #[test]
    fn blanket_adapter_recovers_the_batch_scheduler() {
        let inst = Instance::from_tuples(1, 2.0, vec![(0.0, 2.0, 1.0, 1.0), (1.0, 3.0, 1.0, 1.0)])
            .unwrap();
        // Via the blanket impl, the online algorithm is a Scheduler.
        let s: &dyn Scheduler = &Density;
        assert_eq!(s.name(), "density");
        let schedule = s.schedule(&inst).unwrap();
        // Both jobs fully processed at their densities.
        let work = schedule.work_per_job(2);
        assert!((work[0] - 1.0).abs() < 1e-12);
        assert!((work[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn frontier_grows_monotonically_and_matches_the_final_schedule() {
        let inst = Instance::from_tuples(
            1,
            2.0,
            vec![
                (0.0, 1.0, 0.5, 1.0),
                (1.0, 2.0, 0.5, 1.0),
                (2.0, 3.0, 0.5, 1.0),
            ],
        )
        .unwrap();
        let mut run = Density.start_for(&inst).unwrap();
        let mut last_len = 0usize;
        for id in inst.arrival_order() {
            let job = inst.job(id);
            let d = run.on_arrival(job, job.release).unwrap();
            assert!(d.accepted);
            assert!(run.frontier().segments.len() >= last_len);
            last_len = run.frontier().segments.len();
        }
        // The frontier's committed speeds agree with the final schedule.
        let committed = run.frontier().clone();
        let full = run.finish().unwrap();
        for sample in [0.25, 0.75, 1.5] {
            assert!(
                (committed.speed_at(0, sample) - full.speed_at(0, sample)).abs() < 1e-12,
                "past revised at t={sample}"
            );
        }
    }

    #[test]
    fn default_on_arrivals_is_the_on_arrival_loop() {
        let inst = Instance::from_tuples(
            1,
            2.0,
            vec![
                (0.0, 2.0, 0.5, 1.0),
                (0.0, 3.0, 0.5, 1.0),
                (1.0, 4.0, 0.5, 1.0),
            ],
        )
        .unwrap();
        let mut looped = Density.start_for(&inst).unwrap();
        let mut batched = Density.start_for(&inst).unwrap();
        // Burst of the two t=0 jobs, then the t=1 singleton.
        let jobs = &inst.jobs;
        let burst = batched.on_arrivals(&jobs[0..2], 0.0).unwrap();
        let mut single = Vec::new();
        for job in &jobs[0..2] {
            single.push(looped.on_arrival(job, 0.0).unwrap());
        }
        assert_eq!(burst, single);
        assert_eq!(
            batched.on_arrivals(&jobs[2..3], 1.0).unwrap(),
            vec![looped.on_arrival(&jobs[2], 1.0).unwrap()]
        );
        // Empty bursts are no-ops.
        assert!(batched.on_arrivals(&[], 1.0).unwrap().is_empty());
        let a = batched.finish().unwrap();
        let b = looped.finish().unwrap();
        assert_eq!(a.segments, b.segments, "burst path revised the schedule");
    }

    #[test]
    fn decisions_carry_dual_values() {
        let accept = Decision::accept(2.5);
        assert!(accept.accepted);
        assert_eq!(accept.dual, 2.5);
        let reject = Decision::reject(7.0);
        assert!(!reject.accepted);
        assert_eq!(reject.dual, 7.0);
    }

    #[test]
    fn check_arrival_enforces_the_ingress_contract() {
        let job = Job::new(0, 2.0, 4.0, 1.0, 1.0);
        // Fresh run (previous = -inf) at the release time: fine.
        assert!(check_arrival(&job, f64::NEG_INFINITY, 2.0).is_ok());
        // Later than release and after the previous arrival: fine.
        assert!(check_arrival(&job, 2.0, 3.0).is_ok());
        // Fed clearly before its release: rejected.
        assert!(check_arrival(&job, f64::NEG_INFINITY, 1.0).is_err());
        // Within the tolerance of the release: fine.
        assert!(check_arrival(&job, f64::NEG_INFINITY, 2.0 - 1e-12).is_ok());
        // Out of order versus the previous arrival: rejected.
        assert!(check_arrival(&job, 3.0, 2.0).is_err());
    }

    #[test]
    fn check_arrival_rejects_non_finite_jobs_at_ingress() {
        let mut nan_work = Job::new(0, 0.0, 1.0, 1.0, 1.0);
        nan_work.work = f64::NAN;
        assert!(check_arrival(&nan_work, f64::NEG_INFINITY, 0.0).is_err());
        let mut inf_deadline = Job::new(0, 0.0, 1.0, 1.0, 1.0);
        inf_deadline.deadline = f64::INFINITY;
        assert!(check_arrival(&inf_deadline, f64::NEG_INFINITY, 0.0).is_err());
    }
}
