//! Jobs and job identifiers.

use std::fmt;

use crate::error::InstanceError;
use crate::num;

/// Identifier of a job inside an [`Instance`](crate::Instance).
///
/// Job ids are dense indices (`0..n`) into the instance's job vector; all
/// per-job vectors in the workspace (work assignments, dual variables,
/// rejection flags, …) are indexed by `JobId::index()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub usize);

impl JobId {
    /// The dense index of this job.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// A preemptable job, following Section 2 of the paper.
///
/// A job `j` is released at time `release = r_j`, must be finished by
/// `deadline = d_j` to count as completed, carries `work = w_j` units of
/// workload, and is worth `value = v_j`.  A schedule that does not finish
/// the job pays `v_j` instead of the energy required to process it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Job {
    /// Dense identifier of the job inside its instance.
    pub id: JobId,
    /// Release time `r_j`: the job (and all its attributes) becomes known to
    /// an online algorithm only at this time.
    pub release: f64,
    /// Deadline `d_j > r_j`: work processed at or after the deadline does
    /// not count towards finishing the job.
    pub deadline: f64,
    /// Workload `w_j > 0` in units of "work" (speed × time).
    pub work: f64,
    /// Value `v_j >= 0` lost if the job is not finished.
    pub value: f64,
}

impl Job {
    /// Creates a new job.  Prefer [`Instance::from_jobs`](crate::Instance::from_jobs)
    /// or the builder in `pss-workloads` for constructing whole instances.
    pub fn new(id: usize, release: f64, deadline: f64, work: f64, value: f64) -> Self {
        Self {
            id: JobId(id),
            release,
            deadline,
            work,
            value,
        }
    }

    /// Length of the job's availability window `d_j - r_j`.
    #[inline]
    pub fn window(&self) -> f64 {
        self.deadline - self.release
    }

    /// Density `w_j / (d_j - r_j)`: the minimum average speed a processor
    /// must dedicate to the job over its whole window to finish it.
    #[inline]
    pub fn density(&self) -> f64 {
        self.work / self.window()
    }

    /// Returns `true` if the half-open interval `[from, to)` is fully
    /// contained in the job's availability window `[r_j, d_j)`.
    #[inline]
    pub fn covers(&self, from: f64, to: f64) -> bool {
        num::approx_le(self.release, from) && num::approx_le(to, self.deadline)
    }

    /// Returns `true` if the job is available (may be processed) at time `t`.
    #[inline]
    pub fn available_at(&self, t: f64) -> bool {
        num::approx_le(self.release, t) && num::definitely_lt(t, self.deadline)
    }

    /// Checks the basic sanity conditions of the model and returns a
    /// descriptive error if any is violated.
    pub fn validate(&self) -> Result<(), InstanceError> {
        if !self.release.is_finite() || self.release < 0.0 {
            return Err(InstanceError::BadJob {
                job: self.id,
                reason: format!(
                    "release time {} is not finite and nonnegative",
                    self.release
                ),
            });
        }
        if !self.deadline.is_finite() || self.deadline <= self.release {
            return Err(InstanceError::BadJob {
                job: self.id,
                reason: format!(
                    "deadline {} does not lie strictly after release {}",
                    self.deadline, self.release
                ),
            });
        }
        if !self.work.is_finite() || self.work <= 0.0 {
            return Err(InstanceError::BadJob {
                job: self.id,
                reason: format!("workload {} is not finite and positive", self.work),
            });
        }
        if !self.value.is_finite() || self.value < 0.0 {
            return Err(InstanceError::BadJob {
                job: self.id,
                reason: format!("value {} is not finite and nonnegative", self.value),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> Job {
        Job::new(3, 1.0, 5.0, 2.0, 10.0)
    }

    #[test]
    fn id_display_and_index() {
        assert_eq!(JobId(7).to_string(), "j7");
        assert_eq!(JobId(7).index(), 7);
    }

    #[test]
    fn window_and_density() {
        let j = job();
        assert_eq!(j.window(), 4.0);
        assert_eq!(j.density(), 0.5);
    }

    #[test]
    fn covers_and_available_at() {
        let j = job();
        assert!(j.covers(1.0, 5.0));
        assert!(j.covers(2.0, 3.0));
        assert!(!j.covers(0.5, 3.0));
        assert!(!j.covers(2.0, 5.5));
        assert!(j.available_at(1.0));
        assert!(j.available_at(4.999));
        assert!(!j.available_at(5.0));
        assert!(!j.available_at(0.999));
    }

    #[test]
    fn validation_accepts_good_job() {
        assert!(job().validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_jobs() {
        let mut j = job();
        j.deadline = 1.0;
        assert!(j.validate().is_err());

        let mut j = job();
        j.work = 0.0;
        assert!(j.validate().is_err());

        let mut j = job();
        j.value = -1.0;
        assert!(j.validate().is_err());

        let mut j = job();
        j.release = f64::NAN;
        assert!(j.validate().is_err());
    }
}
