//! The adversarial scenario fleet (ROADMAP item 5): named, seedable
//! workload scenarios beyond the Poisson/bursty families of [`random`] —
//! flash crowds, diurnal cycles, heavy-tailed work and value, overload
//! regimes where rejection dominates, and per-algorithm adversaries (the
//! YDS staircase, BKP grid-resonant releases).
//!
//! A [`ScenarioConfig`] is a small named value: `kind` picks the shape,
//! `seed` pins every draw (all sampling goes through [`SmallRng`]), and
//! the soak harness iterates [`ScenarioConfig::all`] to build its
//! scenario × fault-plan matrix.  The same config always generates the
//! same [`Instance`], bit for bit.
//!
//! [`random`]: crate::random

use pss_types::{Instance, Job, JobEnvelope, TenantId};

use crate::adversarial::staircase_multiprocessor;
use crate::rng::SmallRng;

/// The instance's jobs as a serving-layer submission stream: envelopes in
/// arrival order (release, then id), tagged with the logical job id and
/// attributed to `TenantId(0)` (drivers overwrite the tenant through the
/// handle they submit on).  The shared front half of every daemon driver —
/// the chaos engine's wave partition and the stream router both start
/// here, so the "same workload" in a sharded-vs-unsharded comparison is
/// the same envelope sequence by construction.
pub fn arrival_envelopes(instance: &Instance) -> Vec<JobEnvelope> {
    let mut jobs = instance.jobs.clone();
    jobs.sort_by(|a, b| a.release.total_cmp(&b.release).then(a.id.cmp(&b.id)));
    jobs.iter()
        .map(|j| {
            JobEnvelope::new(
                TenantId(0),
                j.id.index() as u64,
                j.release,
                j.deadline,
                j.work,
                j.value,
            )
        })
        .collect()
}

/// The shape of a scenario (see each variant's worst case).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// A calm stream that steps to 100x the arrival rate: 60% of the jobs
    /// trickle over the first 80% of the horizon, then the remaining 40%
    /// land in a window compressed by the rate factor.  Stresses burst
    /// coalescing and queue backpressure.
    FlashCrowd,
    /// Two sinusoidal load cycles over the horizon (arrival density swings
    /// roughly 3x between trough and peak) — the classic day/night
    /// pattern.  Stresses price-EWMA tracking across load swings.
    Diurnal,
    /// Pareto-tailed work (shape 1.5, capped) with a wide independent
    /// value spread.  A few elephants dominate total work; stresses
    /// speed-scaling cost and acceptance decisions on outliers.
    HeavyTailed,
    /// Rejection-dominated overload: the whole stream lands in a quarter
    /// of the usual horizon with tight windows and values *below* each
    /// job's stand-alone energy — a profit-aware scheduler must reject
    /// most of it.  Stresses the rejection path and the dual price.
    Overload,
    /// The Bansal–Kimbrel–Pruhs staircase (the `α^α` lower-bound
    /// construction), replicated per machine — the YDS/OA-family
    /// adversary.  The seed only jitters the value scale; the structure
    /// is the proof's.
    StaircaseAdversary,
    /// Releases and deadlines aligned just inside uniform grid cells, so
    /// a grid-discretised algorithm (BKP evaluates speeds at step entry)
    /// sees every window open and close between its own evaluation
    /// points.
    GridResonant,
}

/// A named, seedable scenario: everything the soak harness needs to
/// regenerate the workload bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioConfig {
    /// The scenario shape.
    pub kind: ScenarioKind,
    /// Number of jobs to generate (adversarial kinds round to their
    /// structure: the staircase generates `n_jobs / machines` steps per
    /// machine).
    pub n_jobs: usize,
    /// Machines in the generated instance.
    pub machines: usize,
    /// Energy exponent α > 1.
    pub alpha: f64,
    /// Seed for every random draw.
    pub seed: u64,
}

impl ScenarioConfig {
    /// A scenario of the given kind with the fleet defaults: 64 jobs, one
    /// machine, α = 2.5.
    pub fn new(kind: ScenarioKind, seed: u64) -> Self {
        Self {
            kind,
            n_jobs: 64,
            machines: 1,
            alpha: 2.5,
            seed,
        }
    }

    /// The scenario's stable name (table keys, file names, log lines).
    pub fn name(&self) -> &'static str {
        match self.kind {
            ScenarioKind::FlashCrowd => "flash-crowd",
            ScenarioKind::Diurnal => "diurnal",
            ScenarioKind::HeavyTailed => "heavy-tailed",
            ScenarioKind::Overload => "overload",
            ScenarioKind::StaircaseAdversary => "staircase-adversary",
            ScenarioKind::GridResonant => "grid-resonant",
        }
    }

    /// One config per scenario kind, sharing size, machine count, α and
    /// seed — the fleet the soak harness crosses with its fault plans.
    pub fn all(n_jobs: usize, machines: usize, alpha: f64, seed: u64) -> Vec<Self> {
        [
            ScenarioKind::FlashCrowd,
            ScenarioKind::Diurnal,
            ScenarioKind::HeavyTailed,
            ScenarioKind::Overload,
            ScenarioKind::StaircaseAdversary,
            ScenarioKind::GridResonant,
        ]
        .into_iter()
        .map(|kind| Self {
            kind,
            n_jobs,
            machines,
            alpha,
            seed,
        })
        .collect()
    }

    /// Generates the scenario's instance.  Deterministic in the config:
    /// the same `(kind, n_jobs, machines, alpha, seed)` always produces
    /// the same jobs, bit for bit.
    pub fn generate(&self) -> Instance {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let n = self.n_jobs.max(2);
        let jobs = match self.kind {
            ScenarioKind::FlashCrowd => flash_crowd(n, self.alpha, &mut rng),
            ScenarioKind::Diurnal => diurnal(n, self.alpha, &mut rng),
            ScenarioKind::HeavyTailed => heavy_tailed(n, &mut rng),
            ScenarioKind::Overload => overload(n, self.alpha, &mut rng),
            ScenarioKind::StaircaseAdversary => {
                // The construction is fixed; the seed only jitters how
                // unprofitable rejection is.
                let factor = rng.f64_range(50.0, 150.0);
                let per_machine = (n / self.machines.max(1)).max(2);
                return staircase_multiprocessor(
                    per_machine,
                    self.machines.max(1),
                    self.alpha,
                    factor,
                );
            }
            ScenarioKind::GridResonant => grid_resonant(n, self.alpha, &mut rng),
        };
        finish(self.machines.max(1), self.alpha, jobs)
    }
}

/// Sorts by release (ties by the draw index already encoded in `id`),
/// reassigns dense ids in arrival order, and builds the instance.
fn finish(machines: usize, alpha: f64, mut jobs: Vec<Job>) -> Instance {
    jobs.sort_by(|a, b| a.release.total_cmp(&b.release).then(a.id.cmp(&b.id)));
    let jobs = jobs
        .into_iter()
        .enumerate()
        .map(|(id, j)| Job::new(id, j.release, j.deadline, j.work, j.value))
        .collect();
    Instance::from_jobs(machines, alpha, jobs).expect("scenario jobs are valid")
}

/// The energy of running `work` alone, spread evenly over `window`.
fn alone_energy(work: f64, window: f64, alpha: f64) -> f64 {
    work * (work / window).powf(alpha - 1.0)
}

fn flash_crowd(n: usize, alpha: f64, rng: &mut SmallRng) -> Vec<Job> {
    const HORIZON: f64 = 10.0;
    const RATE_STEP: f64 = 100.0;
    let calm_n = (n * 3) / 5;
    let calm_end = 0.8 * HORIZON;
    // The crowd arrives at RATE_STEP times the calm rate, so its window is
    // its share of the stream divided by the stepped-up rate.
    let calm_rate = calm_n as f64 / calm_end;
    let crowd_len = (n - calm_n) as f64 / (RATE_STEP * calm_rate);
    (0..n)
        .map(|i| {
            let release = if i < calm_n {
                rng.f64_range(0.0, calm_end)
            } else {
                rng.f64_range(calm_end, calm_end + crowd_len)
            };
            let window = rng.f64_range(0.5, 2.0);
            let work = rng.f64_range(0.5, 2.0);
            let value = alone_energy(work, window, alpha) * rng.f64_range(0.5, 4.0);
            Job::new(i, release, release + window, work, value)
        })
        .collect()
}

fn diurnal(n: usize, alpha: f64, rng: &mut SmallRng) -> Vec<Job> {
    const HORIZON: f64 = 20.0;
    const CYCLES: f64 = 2.0;
    // Monotone time warp of a uniform grid: where the warp's slope is
    // small, arrivals bunch (peak); where it is large, they thin (trough).
    // Amplitude keeps the derivative positive, so order is preserved.
    const AMP: f64 = 0.05;
    (0..n)
        .map(|i| {
            let u = (i as f64 + 0.9 * rng.next_f64()) / n as f64;
            let release = HORIZON * (u + AMP * (2.0 * std::f64::consts::PI * CYCLES * u).sin());
            let window = rng.f64_range(1.0, 4.0);
            let work = rng.f64_range(0.5, 2.0);
            let value = alone_energy(work, window, alpha) * rng.f64_range(0.5, 4.0);
            Job::new(i, release, release + window, work, value)
        })
        .collect()
}

fn heavy_tailed(n: usize, rng: &mut SmallRng) -> Vec<Job> {
    const HORIZON: f64 = 10.0;
    const SHAPE: f64 = 1.5;
    const SCALE: f64 = 0.5;
    const CAP: f64 = 50.0;
    (0..n)
        .map(|i| {
            let release = rng.f64_range(0.0, HORIZON);
            let window = rng.f64_range(1.0, 4.0);
            // Inverse-CDF Pareto draw, capped so a single elephant cannot
            // dwarf the rest of the instance beyond measure.
            let u = 1.0 - rng.next_f64();
            let work = (SCALE / u.powf(1.0 / SHAPE)).min(CAP);
            // Value proportional to work with a wide independent spread —
            // heavy in both dimensions, and not perfectly correlated.
            let value = work * rng.f64_range(0.2, 10.0);
            Job::new(i, release, release + window, work, value)
        })
        .collect()
}

fn overload(n: usize, alpha: f64, rng: &mut SmallRng) -> Vec<Job> {
    // The whole stream in a quarter of the flash-crowd horizon, tight
    // windows, values strictly below stand-alone energy: accepting
    // everything loses money, so rejection must dominate.
    const HORIZON: f64 = 2.5;
    (0..n)
        .map(|i| {
            let release = rng.f64_range(0.0, HORIZON);
            let window = rng.f64_range(0.3, 1.0);
            let work = rng.f64_range(0.5, 2.0);
            let value = alone_energy(work, window, alpha) * rng.f64_range(0.05, 0.5);
            Job::new(i, release, release + window, work, value)
        })
        .collect()
}

fn grid_resonant(n: usize, alpha: f64, rng: &mut SmallRng) -> Vec<Job> {
    const HORIZON: f64 = 8.0;
    const CELLS: usize = 64;
    let step = HORIZON / CELLS as f64;
    let eps = step * 1e-3;
    (0..n)
        .map(|i| {
            // The whole window sits strictly inside one grid cell: it
            // opens just after a boundary and closes just before the
            // next, resonating with any evaluator that samples state at
            // step entry.
            let cell = rng.usize_range(0, CELLS - 1) as f64;
            let release = cell * step + eps;
            let deadline = (cell + 1.0) * step - eps;
            let work = step * rng.f64_range(0.2, 0.8);
            let value = alone_energy(work, deadline - release, alpha) * rng.f64_range(1.0, 4.0);
            Job::new(i, release, deadline, work, value)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> Vec<ScenarioConfig> {
        ScenarioConfig::all(64, 1, 2.5, 42)
    }

    #[test]
    fn every_scenario_generates_a_valid_deterministic_instance() {
        for config in fleet() {
            let a = config.generate();
            let b = config.generate();
            assert!(a.validate().is_ok(), "{} must validate", config.name());
            assert_eq!(a.jobs, b.jobs, "{} must be deterministic", config.name());
            assert_eq!(a.machines, 1);
            // Arrival order: the soak harness feeds instances in order.
            for w in a.jobs.windows(2) {
                assert!(w[1].release >= w[0].release, "{}", config.name());
            }
            let other = ScenarioConfig { seed: 43, ..config }.generate();
            assert_ne!(a.jobs, other.jobs, "{} must be seedable", config.name());
        }
    }

    #[test]
    fn names_are_stable_and_distinct() {
        let names: Vec<&str> = fleet().iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            vec![
                "flash-crowd",
                "diurnal",
                "heavy-tailed",
                "overload",
                "staircase-adversary",
                "grid-resonant"
            ]
        );
    }

    #[test]
    fn flash_crowd_steps_the_rate_by_two_orders_of_magnitude() {
        let inst = ScenarioConfig::new(ScenarioKind::FlashCrowd, 7).generate();
        // 40% of the jobs land past t = 8 in a window ~100x denser than
        // the calm phase's.
        let crowd: Vec<f64> = inst
            .jobs
            .iter()
            .map(|j| j.release)
            .filter(|r| *r >= 8.0)
            .collect();
        assert!(crowd.len() >= 25, "the crowd is 40% of 64 jobs");
        let span = crowd.last().unwrap() - crowd.first().unwrap();
        let calm_rate = (64.0 - crowd.len() as f64) / 8.0;
        let crowd_rate = crowd.len() as f64 / span;
        assert!(
            crowd_rate > 50.0 * calm_rate,
            "rate step must be ~100x (got {:.0}x)",
            crowd_rate / calm_rate
        );
    }

    #[test]
    fn overload_values_sit_below_stand_alone_energy() {
        let config = ScenarioConfig::new(ScenarioKind::Overload, 3);
        let inst = config.generate();
        for job in &inst.jobs {
            let window = job.deadline - job.release;
            let alone = alone_energy(job.work, window, config.alpha);
            assert!(
                job.value < alone,
                "overload jobs must be unprofitable to run alone"
            );
        }
    }

    #[test]
    fn grid_resonant_windows_sit_strictly_inside_cells() {
        let inst = ScenarioConfig::new(ScenarioKind::GridResonant, 9).generate();
        let step = 8.0 / 64.0;
        for job in &inst.jobs {
            let cell = (job.release / step).floor();
            let lo = cell * step;
            let hi = lo + step;
            assert!(job.release > lo && job.deadline < hi);
            assert!(job.deadline > job.release);
        }
    }

    #[test]
    fn staircase_adversary_keeps_the_proof_structure() {
        let config = ScenarioConfig {
            machines: 2,
            ..ScenarioConfig::new(ScenarioKind::StaircaseAdversary, 5)
        };
        let inst = config.generate();
        assert_eq!(inst.machines, 2);
        assert_eq!(inst.len(), 64, "32 steps per machine");
        assert!(inst.validate().is_ok());
    }
}
