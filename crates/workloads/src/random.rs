//! Seeded random instance families.
//!
//! These are the *statistical* workloads (uniform/Poisson/bursty arrivals
//! with uniform or Pareto work).  The named scenario regimes the soak
//! harness runs — flash crowds, diurnal cycles, overload, per-algorithm
//! adversaries — live in [`crate::scenarios`].

use pss_types::{Instance, Job};

use crate::rng::SmallRng;

/// How job release times are generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalModel {
    /// Release times drawn uniformly from `[0, horizon)`.
    Uniform,
    /// A Poisson process with the given rate (jobs per unit time); the
    /// `horizon` field is ignored and the stream extends as far as needed.
    Poisson {
        /// Expected number of arrivals per unit time.
        rate: f64,
    },
    /// Jobs arrive in bursts: groups of `burst_size` share a release time,
    /// and the burst release times are spread uniformly over the horizon.
    Bursty {
        /// Number of jobs per burst.
        burst_size: usize,
    },
    /// Bursts of near-simultaneous jobs whose *burst* times follow a
    /// Poisson process: every burst has `burst_size` jobs whose release
    /// times are spread uniformly over `[center, center + jitter)` (sorted
    /// within the burst).  `jitter = 0` collapses to bit-equal release
    /// times per burst.
    ///
    /// This is the ingestion-grain workload of the burst-batching layer: a
    /// real stream's "simultaneous" arrivals carry distinct (microsecond)
    /// timestamps, which is exactly what a coalescing window turns back
    /// into one batch.  The `horizon` field is ignored; the stream extends
    /// as far as needed.
    BurstyPoisson {
        /// Expected number of *bursts* per unit time.
        rate: f64,
        /// Number of jobs per burst.
        burst_size: usize,
        /// Width of the intra-burst release spread (0 = exactly equal).
        jitter: f64,
    },
}

/// How job window lengths (deadline − release) are generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowModel {
    /// Window lengths uniform in `[min, max]`.
    Uniform {
        /// Shortest window.
        min: f64,
        /// Longest window.
        max: f64,
    },
}

/// How job workloads are generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkModel {
    /// Workloads uniform in `[min, max]`.
    Uniform {
        /// Smallest workload.
        min: f64,
        /// Largest workload.
        max: f64,
    },
    /// Heavy-tailed workloads: `scale · U^{-1/shape}` (Pareto), capped at
    /// `cap` to keep instances numerically sane.
    Pareto {
        /// Pareto shape parameter (smaller = heavier tail).
        shape: f64,
        /// Scale (minimum workload).
        scale: f64,
        /// Hard cap on the workload.
        cap: f64,
    },
}

/// How job values are generated.
///
/// The interesting regime for *profitable* scheduling is when values are of
/// the same order as the energy a job needs: far larger values make every
/// algorithm accept everything (the classical model), far smaller values
/// make everything get rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueModel {
    /// Values uniform in `[min, max]`, independent of the job.
    Absolute {
        /// Smallest value.
        min: f64,
        /// Largest value.
        max: f64,
    },
    /// `value = factor · work`, with `factor` uniform in `[min, max]`.
    ProportionalToWork {
        /// Smallest factor.
        min: f64,
        /// Largest factor.
        max: f64,
    },
    /// `value = factor · E_alone`, where `E_alone = w·(w/window)^{α-1}` is
    /// the energy of running the job alone at its density, with `factor`
    /// uniform in `[min, max]`.  `factor ≈ 1` puts the job right at the
    /// accept/reject boundary.
    ProportionalToEnergy {
        /// Smallest factor.
        min: f64,
        /// Largest factor.
        max: f64,
    },
    /// Every job gets the same huge value, effectively forbidding rejection
    /// (the classical mandatory-completion model).
    Mandatory,
}

/// Configuration of a random instance family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomConfig {
    /// Number of jobs.
    pub n_jobs: usize,
    /// Number of machines.
    pub machines: usize,
    /// Energy exponent `α`.
    pub alpha: f64,
    /// Length of the arrival window (for uniform/bursty arrivals).
    pub horizon: f64,
    /// Arrival model.
    pub arrival: ArrivalModel,
    /// Window-length model.
    pub window: WindowModel,
    /// Workload model.
    pub work: WorkModel,
    /// Value model.
    pub value: ValueModel,
    /// PRNG seed; equal seeds give equal instances.
    pub seed: u64,
}

impl RandomConfig {
    /// A reasonable default family: 20 jobs, 2 machines, `α = 2.5`,
    /// uniform arrivals over 10 time units, windows 1–4, work 0.5–2 and
    /// values around the stand-alone energy.
    pub fn standard(seed: u64) -> Self {
        Self {
            n_jobs: 20,
            machines: 2,
            alpha: 2.5,
            horizon: 10.0,
            arrival: ArrivalModel::Uniform,
            window: WindowModel::Uniform { min: 1.0, max: 4.0 },
            work: WorkModel::Uniform { min: 0.5, max: 2.0 },
            value: ValueModel::ProportionalToEnergy { min: 0.5, max: 4.0 },
            seed,
        }
    }

    /// Generates the instance described by this configuration.
    pub fn generate(&self) -> Instance {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        self.generate_with(&mut rng)
    }

    /// Generates the instance drawing from an explicit generator (the
    /// `seed` field is ignored).
    ///
    /// This is what the sharded streaming harness uses: shard `k` draws
    /// from [`SmallRng::split_stream`]`(k)` of one base generator, so the
    /// shards' workloads are provably independent substreams of a single
    /// seed rather than `s` ad-hoc seeds.
    pub fn generate_with(&self, rng: &mut SmallRng) -> Instance {
        let releases = self.releases(rng);
        let mut jobs = Vec::with_capacity(self.n_jobs);
        for (i, release) in releases.into_iter().enumerate() {
            let window = match self.window {
                WindowModel::Uniform { min, max } => sample_uniform(rng, min, max),
            };
            let work = match self.work {
                WorkModel::Uniform { min, max } => sample_uniform(rng, min, max),
                WorkModel::Pareto { shape, scale, cap } => {
                    let u: f64 = rng.f64_range(1e-9, 1.0);
                    (scale * u.powf(-1.0 / shape)).min(cap)
                }
            };
            let value = match self.value {
                ValueModel::Absolute { min, max } => sample_uniform(rng, min, max),
                ValueModel::ProportionalToWork { min, max } => work * sample_uniform(rng, min, max),
                ValueModel::ProportionalToEnergy { min, max } => {
                    let alone = work * (work / window).powf(self.alpha - 1.0);
                    alone * sample_uniform(rng, min, max)
                }
                ValueModel::Mandatory => 1e12,
            };
            jobs.push(Job::new(i, release, release + window, work, value));
        }
        Instance::from_jobs(self.machines, self.alpha, jobs).expect("generator produces valid jobs")
    }

    fn releases(&self, rng: &mut SmallRng) -> Vec<f64> {
        match self.arrival {
            ArrivalModel::Uniform => {
                let mut r: Vec<f64> = (0..self.n_jobs)
                    .map(|_| sample_uniform(rng, 0.0, self.horizon))
                    .collect();
                r.sort_by(f64::total_cmp);
                r
            }
            ArrivalModel::Poisson { rate } => {
                let mut t = 0.0;
                (0..self.n_jobs)
                    .map(|_| {
                        let u: f64 = rng.f64_range(1e-12, 1.0);
                        t += -u.ln() / rate;
                        t
                    })
                    .collect()
            }
            ArrivalModel::Bursty { burst_size } => {
                let bursts = self.n_jobs.div_ceil(burst_size.max(1));
                let mut burst_times: Vec<f64> = (0..bursts)
                    .map(|_| sample_uniform(rng, 0.0, self.horizon))
                    .collect();
                burst_times.sort_by(f64::total_cmp);
                (0..self.n_jobs)
                    .map(|i| burst_times[i / burst_size.max(1)])
                    .collect()
            }
            ArrivalModel::BurstyPoisson {
                rate,
                burst_size,
                jitter,
            } => {
                let b = burst_size.max(1);
                let bursts = self.n_jobs.div_ceil(b);
                let mut releases = Vec::with_capacity(self.n_jobs);
                let mut center = 0.0;
                for burst in 0..bursts {
                    let u: f64 = rng.f64_range(1e-12, 1.0);
                    center += -u.ln() / rate;
                    let in_burst = b.min(self.n_jobs - burst * b);
                    let mut offsets: Vec<f64> = (0..in_burst)
                        .map(|_| {
                            if jitter > 0.0 {
                                rng.f64_range(0.0, jitter)
                            } else {
                                0.0
                            }
                        })
                        .collect();
                    offsets.sort_by(f64::total_cmp);
                    releases.extend(offsets.into_iter().map(|o| center + o));
                }
                // Heavy jitter can make consecutive bursts overlap; the
                // online contract needs a globally nondecreasing stream.
                releases.sort_by(f64::total_cmp);
                releases
            }
        }
    }
}

fn sample_uniform(rng: &mut SmallRng, min: f64, max: f64) -> f64 {
    rng.f64_range(min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = RandomConfig::standard(7).generate();
        let b = RandomConfig::standard(7).generate();
        let c = RandomConfig::standard(8).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_instances_are_valid_and_sized_correctly() {
        for seed in 0..5 {
            let inst = RandomConfig::standard(seed).generate();
            assert_eq!(inst.len(), 20);
            assert!(inst.validate().is_ok());
        }
    }

    #[test]
    fn poisson_arrivals_are_increasing() {
        let cfg = RandomConfig {
            arrival: ArrivalModel::Poisson { rate: 2.0 },
            ..RandomConfig::standard(3)
        };
        let inst = cfg.generate();
        let releases: Vec<f64> = inst.jobs.iter().map(|j| j.release).collect();
        for w in releases.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn bursty_arrivals_share_release_times() {
        let cfg = RandomConfig {
            n_jobs: 12,
            arrival: ArrivalModel::Bursty { burst_size: 4 },
            ..RandomConfig::standard(11)
        };
        let inst = cfg.generate();
        let distinct: std::collections::BTreeSet<u64> =
            inst.jobs.iter().map(|j| j.release.to_bits()).collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn bursty_poisson_groups_are_jitter_bounded_and_sorted() {
        let cfg = RandomConfig {
            n_jobs: 24,
            arrival: ArrivalModel::BurstyPoisson {
                rate: 2.0,
                burst_size: 4,
                jitter: 1e-4,
            },
            ..RandomConfig::standard(17)
        };
        let inst = cfg.generate();
        let releases: Vec<f64> = inst.jobs.iter().map(|j| j.release).collect();
        for w in releases.windows(2) {
            assert!(w[1] >= w[0], "releases must be nondecreasing");
        }
        // Each burst of 4 spans at most the jitter width.
        for chunk in releases.chunks(4) {
            assert!(chunk[chunk.len() - 1] - chunk[0] <= 1e-4 + 1e-12);
        }
        // Zero jitter collapses to bit-equal release times per burst.
        let exact = RandomConfig {
            arrival: ArrivalModel::BurstyPoisson {
                rate: 2.0,
                burst_size: 4,
                jitter: 0.0,
            },
            ..cfg
        }
        .generate();
        for chunk in exact.jobs.chunks(4) {
            assert!(chunk.iter().all(|j| j.release == chunk[0].release));
        }
    }

    #[test]
    fn generate_with_split_streams_yields_distinct_shards() {
        let cfg = RandomConfig::standard(33);
        let base = crate::SmallRng::seed_from_u64(33);
        let a = cfg.generate_with(&mut base.split_stream(0));
        let b = cfg.generate_with(&mut base.split_stream(1));
        assert_ne!(a, b, "shards must draw from disjoint substreams");
        // And the shard set is reproducible.
        let a2 = cfg.generate_with(&mut base.split_stream(0));
        assert_eq!(a, a2);
    }

    #[test]
    fn pareto_work_is_capped_and_above_scale() {
        let cfg = RandomConfig {
            n_jobs: 200,
            work: WorkModel::Pareto {
                shape: 1.2,
                scale: 0.5,
                cap: 25.0,
            },
            ..RandomConfig::standard(5)
        };
        let inst = cfg.generate();
        for j in &inst.jobs {
            assert!(j.work >= 0.5 - 1e-12 && j.work <= 25.0 + 1e-12);
        }
    }

    #[test]
    fn mandatory_values_are_huge() {
        let cfg = RandomConfig {
            value: ValueModel::Mandatory,
            ..RandomConfig::standard(2)
        };
        let inst = cfg.generate();
        assert!(inst.jobs.iter().all(|j| j.value >= 1e11));
    }

    #[test]
    fn proportional_to_energy_values_scale_with_density() {
        let cfg = RandomConfig {
            value: ValueModel::ProportionalToEnergy { min: 1.0, max: 1.0 },
            ..RandomConfig::standard(9)
        };
        let inst = cfg.generate();
        for j in &inst.jobs {
            let alone = j.work * (j.work / j.window()).powf(inst.alpha - 1.0);
            assert!((j.value - alone).abs() < 1e-9 * alone.max(1.0));
        }
    }
}
