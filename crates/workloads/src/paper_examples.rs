//! The small hand-crafted instances behind the paper's illustrations.

use pss_types::Instance;

/// An instance reproducing the situation of the paper's **Figure 2**:
/// four machines, a handful of jobs of very different sizes inside one
/// atomic interval, so that Chen et al.'s algorithm uses both dedicated and
/// pool machines — and the arrival of one more job demotes a dedicated job
/// into the pool.
///
/// The "new job" of Figure 2(b) is the last job of the instance (largest
/// id); experiment E1 runs Chen's algorithm with and without it and prints
/// the machine loads before and after.
pub fn figure2_instance() -> Instance {
    Instance::from_tuples(
        4,
        3.0,
        vec![
            // One atomic interval [0, 1): all jobs share it.
            (0.0, 1.0, 2.4, 100.0), // large: dedicated
            (0.0, 1.0, 1.0, 100.0), // medium: dedicated before the arrival, pooled after
            (0.0, 1.0, 0.5, 100.0), // pool
            (0.0, 1.0, 0.4, 100.0), // pool
            (0.0, 1.0, 0.3, 100.0), // pool
            (0.0, 1.0, 0.9, 100.0), // the newly arriving job of Figure 2(b)
        ],
    )
    .expect("figure 2 instance is valid")
}

/// An instance reproducing the flavour of the paper's **Figure 3**: a single
/// machine and two jobs whose windows nest, chosen so that OA raises the
/// speed of already-planned work when the second job arrives while PD only
/// adds new work — making PD's profile more conservative towards the end of
/// the horizon.
pub fn figure3_instance() -> Instance {
    Instance::from_tuples(
        1,
        3.0,
        vec![
            // Job available on the whole horizon [0, 2).
            (0.0, 2.0, 1.0, 1e6),
            // Job arriving later with a tight deadline.
            (1.0, 1.5, 0.8, 1e6),
        ],
    )
    .expect("figure 3 instance is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_is_a_single_interval_four_machine_instance() {
        let inst = figure2_instance();
        assert_eq!(inst.machines, 4);
        assert!(inst.len() > inst.machines);
        let (lo, hi) = inst.horizon();
        assert_eq!((lo, hi), (0.0, 1.0));
    }

    #[test]
    fn figure3_jobs_nest_and_values_forbid_rejection() {
        let inst = figure3_instance();
        assert_eq!(inst.machines, 1);
        assert_eq!(inst.len(), 2);
        let a = &inst.jobs[0];
        let b = &inst.jobs[1];
        assert!(a.release < b.release && b.deadline < a.deadline);
        assert!(a.value > 1e3 && b.value > 1e3);
    }
}
