//! A small, dependency-free seeded PRNG used by every generator and
//! randomised test in the workspace.
//!
//! The build environment has no access to crates.io, so instead of `rand` +
//! `rand_chacha` the workspace uses this xoshiro256**-based generator
//! (seeded via SplitMix64, the construction recommended by its authors).
//! It is deterministic per seed across platforms, which is all the
//! experiment tables and property tests need; it is **not** cryptographic.

use pss_types::snapshot::{BlobWriter, Checkpointable, SnapshotError, StateBlob};

/// A seedable, deterministic pseudo-random number generator
/// (xoshiro256**).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    state: [u64; 4],
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed.  Equal seeds yield equal
    /// streams on every platform.
    pub fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the 256-bit state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            state: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// A uniform sample from `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample from `[min, max)`; returns `min` when the range is
    /// empty or degenerate.
    pub fn f64_range(&mut self, min: f64, max: f64) -> f64 {
        if max <= min {
            min
        } else {
            min + (max - min) * self.next_f64()
        }
    }

    /// A uniform sample from the inclusive integer range `[lo, hi]`.
    pub fn usize_range(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        let span = (hi - lo + 1) as u64;
        lo + (self.next_u64() % span) as usize
    }

    /// Advances the generator by `2^128` [`next_u64`](Self::next_u64) calls
    /// in `O(1)` time (the standard xoshiro256** jump polynomial).
    ///
    /// Jumping partitions the generator's period `2^256 − 1` into `2^128`
    /// non-overlapping substreams of `2^128` draws each: a stream and its
    /// jump can never overlap unless more than `2^128` values are drawn from
    /// the first.  This is what [`split_stream`](Self::split_stream) uses to
    /// hand provably disjoint substreams to parallel shards.
    pub fn jump(&mut self) {
        // The jump polynomial published with the reference xoshiro256**
        // implementation (Blackman & Vigna).
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let mut acc = [0u64; 4];
        for word in JUMP {
            for bit in 0..64 {
                if word & (1u64 << bit) != 0 {
                    for (a, s) in acc.iter_mut().zip(self.state.iter()) {
                        *a ^= s;
                    }
                }
                self.next_u64();
            }
        }
        self.state = acc;
    }

    /// The `k`-th disjoint substream of this generator: a copy jumped `k`
    /// times (`k = 0` is the generator itself).
    ///
    /// Substreams `0, 1, 2, …` are pairwise non-overlapping for up to
    /// `2^128` draws each, so parallel shards seeded via `split_stream`
    /// draw from provably disjoint parts of the period — no accidental
    /// correlation between shards, and the shard set is deterministic for a
    /// fixed base seed regardless of how many threads execute it.  The
    /// serving layer's chaos engine leans on the same property: a fault
    /// plan's classes (kills, corruption bits, interleavings, retry
    /// jitter) each draw from their own substream of one plan seed, which
    /// is what makes a whole chaos run replayable from a single `u64`.
    pub fn split_stream(&self, k: u64) -> Self {
        let mut stream = self.clone();
        for _ in 0..k {
            stream.jump();
        }
        stream
    }
}

/// The stream *position* is the state: a checkpointed workload source
/// resumes drawing exactly where it stopped, so a restored shard replays
/// the identical arrival stream.  (A snapshot holds the 256-bit xoshiro
/// state, not the seed — the position within the period round-trips, not
/// merely the stream identity.)
impl Checkpointable for SmallRng {
    fn snapshot(&self) -> StateBlob {
        let mut w = BlobWriter::new();
        for word in self.state {
            w.write_u64(word);
        }
        StateBlob::new("rng", 1, w.into_payload())
    }

    fn restore(blob: &StateBlob) -> Result<Self, SnapshotError> {
        let mut r = blob.expect("rng", 1)?;
        let state = [r.read_u64()?, r.read_u64()?, r.read_u64()?, r.read_u64()?];
        r.finish()?;
        Ok(Self { state })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_samples_stay_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.f64_range(2.0, 5.0);
            assert!((2.0..5.0).contains(&y));
        }
        assert_eq!(rng.f64_range(3.0, 3.0), 3.0);
    }

    #[test]
    fn usize_range_is_inclusive_and_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.usize_range(2, 6);
            assert!((2..=6).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|s| *s));
        assert_eq!(rng.usize_range(4, 4), 4);
        assert_eq!(rng.usize_range(9, 3), 9);
    }

    #[test]
    fn jump_is_deterministic_and_changes_the_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        a.jump();
        b.jump();
        assert_eq!(a, b, "jump must be deterministic");
        let mut base = SmallRng::seed_from_u64(42);
        let jumped: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let plain: Vec<u64> = (0..8).map(|_| base.next_u64()).collect();
        assert_ne!(jumped, plain, "jump must move to a different substream");
    }

    #[test]
    fn split_stream_is_k_applications_of_jump() {
        let base = SmallRng::seed_from_u64(99);
        let mut manual = base.clone();
        for k in 0..4u64 {
            assert_eq!(base.split_stream(k), manual, "split_stream({k})");
            manual.jump();
        }
        // k = 0 is the generator itself.
        assert_eq!(base.split_stream(0), base);
    }

    #[test]
    fn split_streams_are_pairwise_disjoint_over_a_long_prefix() {
        // Each substream owns 2^128 draws, so any collision between the
        // 64-bit outputs of different substreams over a prefix of 4096
        // draws would be a birthday coincidence (probability ~2^-40 across
        // all pairs) — with a fixed seed this is a deterministic regression
        // test, not a flaky one.
        use std::collections::HashSet;
        let base = SmallRng::seed_from_u64(2024);
        let prefix = 4096usize;
        let mut seen: HashSet<u64> = HashSet::with_capacity(4 * prefix);
        for k in 0..4u64 {
            let mut stream = base.split_stream(k);
            for _ in 0..prefix {
                assert!(
                    seen.insert(stream.next_u64()),
                    "substreams overlap within the first {prefix} draws"
                );
            }
        }
    }

    #[test]
    fn snapshot_restores_the_exact_stream_position() {
        let mut rng = SmallRng::seed_from_u64(321);
        for _ in 0..1000 {
            rng.next_u64();
        }
        let blob = rng.snapshot();
        let mut restored = SmallRng::restore(&blob).unwrap();
        assert_eq!(restored, rng);
        let a: Vec<u64> = (0..64).map(|_| rng.next_u64()).collect();
        let b: Vec<u64> = (0..64).map(|_| restored.next_u64()).collect();
        assert_eq!(a, b, "restored stream must continue at the same position");
        // Wrong kind and truncation are errors, not panics.
        assert!(SmallRng::restore(&StateBlob::new("avr", 1, Vec::new())).is_err());
        assert!(SmallRng::restore(&StateBlob::new("rng", 1, vec![1, 2])).is_err());
    }

    #[test]
    fn mean_of_uniform_samples_is_near_half() {
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
