//! # pss-workloads
//!
//! Workload generators for the experiment harness.  The paper is a theory
//! paper and ships no traces, so the experiments are driven by synthetic
//! workloads that exercise the scenarios its introduction motivates
//! (data-center job streams with heterogeneous sizes, deadlines and values)
//! plus the adversarial instances used in its proofs:
//!
//! * [`random`] — seeded random instance families: uniform or Poisson
//!   arrivals, uniform or Pareto (heavy-tailed) workloads, several value
//!   models (absolute, proportional to work, proportional to the job's
//!   stand-alone energy),
//! * [`adversarial`] — the Bansal–Kimbrel–Pruhs staircase instance that
//!   realises the `α^α` lower bound of Theorem 3, plus a multiprocessor
//!   variant,
//! * [`paper_examples`] — the small hand-crafted instances behind the
//!   paper's Figures 2 and 3,
//! * [`scenarios`] — the named scenario fleet for the soak harness: flash
//!   crowds (100x rate steps), diurnal cycles, heavy-tailed work/value,
//!   rejection-dominated overload, and per-algorithm adversaries
//!   (staircase, grid-resonant releases), each a seedable
//!   [`ScenarioConfig`].
//!
//! All generators are deterministic given their seed (a vendored
//! xoshiro256** generator in [`rng`], since the build environment has no
//! crates.io access), so every experiment table in EXPERIMENTS.md can be
//! regenerated bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adversarial;
pub mod paper_examples;
pub mod random;
pub mod rng;
pub mod scenarios;

pub use adversarial::{staircase_instance, staircase_multiprocessor};
pub use paper_examples::{figure2_instance, figure3_instance};
pub use random::{ArrivalModel, RandomConfig, ValueModel, WindowModel, WorkModel};
pub use rng::SmallRng;
pub use scenarios::{arrival_envelopes, ScenarioConfig, ScenarioKind};
