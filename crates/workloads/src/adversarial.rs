//! Adversarial instances from the lower-bound constructions.
//!
//! The scenario fleet ([`crate::scenarios`]) wraps the staircase here (and
//! a grid-resonant release pattern targeting BKP's discretisation) as named
//! seedable members, so the chaos soak (E16) runs them alongside the
//! statistical workloads.

use pss_types::{Instance, Job};

/// The Bansal–Kimbrel–Pruhs staircase instance used in the proof of the
/// lower bound of Theorem 3 (and originally for the `α^α` lower bound on
/// OA): job `j ∈ {1, …, n}` arrives at time `j − 1`, has workload
/// `(n − j + 1)^{-1/α}` and deadline `n`.
///
/// `value_factor` scales every job's value relative to the energy it would
/// cost to run the job alone over its whole window; a large factor (the
/// default use is `1e6`) makes rejection unprofitable, so PD behaves like OA
/// and its cost approaches `α^α · OPT` as `n → ∞`.
pub fn staircase_instance(n: usize, alpha: f64, value_factor: f64) -> Instance {
    let jobs: Vec<Job> = (1..=n)
        .map(|j| {
            let release = (j - 1) as f64;
            let deadline = n as f64;
            let work = ((n - j + 1) as f64).powf(-1.0 / alpha);
            let window = deadline - release;
            let alone_energy = work * (work / window).powf(alpha - 1.0);
            Job::new(
                j - 1,
                release,
                deadline,
                work,
                value_factor * alone_energy.max(1e-9),
            )
        })
        .collect();
    Instance::from_jobs(1, alpha, jobs).expect("staircase jobs are valid")
}

/// A multiprocessor variant of the staircase: `m` interleaved copies of the
/// single-machine staircase on `m` machines.  Each copy stresses one machine
/// the way the original stresses the single machine.
pub fn staircase_multiprocessor(
    n_per_machine: usize,
    machines: usize,
    alpha: f64,
    value_factor: f64,
) -> Instance {
    let single = staircase_instance(n_per_machine, alpha, value_factor);
    let mut jobs = Vec::with_capacity(n_per_machine * machines);
    let mut id = 0;
    for copy in 0..machines {
        // Tiny release offsets keep the copies distinguishable while leaving
        // the structure intact.
        let offset = copy as f64 * 1e-6;
        for j in &single.jobs {
            jobs.push(Job::new(
                id,
                j.release + offset,
                j.deadline + offset,
                j.work,
                j.value,
            ));
            id += 1;
        }
    }
    Instance::from_jobs(machines, alpha, jobs).expect("valid multiprocessor staircase")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staircase_has_the_paper_structure() {
        let n = 5;
        let alpha = 2.0;
        let inst = staircase_instance(n, alpha, 10.0);
        assert_eq!(inst.len(), n);
        assert_eq!(inst.machines, 1);
        for (idx, job) in inst.jobs.iter().enumerate() {
            let j = idx + 1;
            assert_eq!(job.release, (j - 1) as f64);
            assert_eq!(job.deadline, n as f64);
            let expected_work = ((n - j + 1) as f64).powf(-1.0 / alpha);
            assert!((job.work - expected_work).abs() < 1e-12);
        }
    }

    #[test]
    fn staircase_works_are_increasing_over_time() {
        // Later jobs have larger workloads: (n-j+1)^{-1/alpha} grows in j.
        let inst = staircase_instance(8, 3.0, 1.0);
        for w in inst.jobs.windows(2) {
            assert!(w[1].work > w[0].work);
        }
    }

    #[test]
    fn multiprocessor_staircase_replicates_per_machine() {
        let inst = staircase_multiprocessor(4, 3, 2.0, 5.0);
        assert_eq!(inst.len(), 12);
        assert_eq!(inst.machines, 3);
        assert!(inst.validate().is_ok());
    }
}
