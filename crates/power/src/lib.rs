//! # pss-power
//!
//! The power/energy algebra of the speed-scaling model: the power function
//! `P_α(s) = s^α`, its derivative and inverse, the energy needed to process
//! a given amount of work in a given amount of time, and the closed-form
//! constants appearing in the paper's analysis (the competitive ratio
//! `α^α`, the parameter `δ = α^{1-α}`, the rejection threshold
//! `α^{α-2}·v`, and the Chan–Lam–Li bound `α^α + 2e^α`).
//!
//! Everything in the workspace that touches speeds or energies goes through
//! [`AlphaPower`] so that numeric conventions (handling of `s = 0`,
//! `work = 0`, and tiny negative values from round-off) live in one place.
//!
//! The crate also defines the small extension trait [`PowerFunction`] so
//! that downstream code which only needs convexity and differentiability is
//! generic over the concrete power model; the paper (and the default
//! throughout the workspace) is [`AlphaPower`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alpha;
pub mod traits;

pub use alpha::AlphaPower;
pub use traits::PowerFunction;
