//! The concrete power function `P_α(s) = s^α` and the analysis constants.

use crate::traits::PowerFunction;

/// The power function `P_α(s) = s^α` for a fixed energy exponent `α > 1`,
/// together with the closed-form constants of the paper's analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaPower {
    alpha: f64,
}

impl AlphaPower {
    /// Creates the power function for exponent `alpha`.
    ///
    /// # Panics
    /// Panics if `alpha` is not finite or not strictly greater than 1; the
    /// model (and every formula in the paper) requires `α > 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 1.0,
            "energy exponent alpha must be finite and > 1, got {alpha}"
        );
        Self { alpha }
    }

    /// The energy exponent `α`.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The competitive ratio `α^α` proven for the paper's PD algorithm
    /// (Theorem 3), also the competitive ratio of OA (Bansal et al.).
    #[inline]
    pub fn competitive_ratio_pd(&self) -> f64 {
        self.alpha.powf(self.alpha)
    }

    /// The competitive ratio `α^α + 2 e^α` of the Chan–Lam–Li algorithm,
    /// the previously best known bound which the paper improves upon.
    #[inline]
    pub fn competitive_ratio_cll(&self) -> f64 {
        self.alpha.powf(self.alpha) + 2.0 * self.alpha.exp()
    }

    /// The lower bound `e^{α-1} / α` on the competitive ratio of any
    /// deterministic algorithm (Bansal et al.), quoted in the related work.
    #[inline]
    pub fn deterministic_lower_bound(&self) -> f64 {
        (self.alpha - 1.0).exp() / self.alpha
    }

    /// The analysed choice of the PD parameter, `δ = 1 / α^{α-1} = α^{1-α}`
    /// (Theorem 3).
    #[inline]
    pub fn delta_star(&self) -> f64 {
        self.alpha.powf(1.0 - self.alpha)
    }

    /// The rejection threshold factor `α^{α-2}`: with `δ = δ*`, PD rejects a
    /// job exactly when the energy of its planned schedule would exceed
    /// `α^{α-2} · v_j` (Section 3, "Relation to the OA Algorithm").
    #[inline]
    pub fn rejection_energy_factor(&self) -> f64 {
        self.alpha.powf(self.alpha - 2.0)
    }

    /// The equivalent speed form of the rejection threshold: a job with
    /// value `v` and workload `w` is rejected when its planned (constant)
    /// speed exceeds `(α^{α-2} · v / w)^{1/(α-1)}`.
    #[inline]
    pub fn rejection_speed_threshold(&self, value: f64, work: f64) -> f64 {
        debug_assert!(work > 0.0);
        (self.rejection_energy_factor() * value / work).powf(1.0 / (self.alpha - 1.0))
    }

    /// The speed `ŝ = (λ / (α w))^{1/(α-1)}` associated with a dual value
    /// `λ` and workload `w` (Lemma 5 of the paper).
    #[inline]
    pub fn dual_speed(&self, lambda: f64, work: f64) -> f64 {
        debug_assert!(work > 0.0);
        if lambda <= 0.0 {
            return 0.0;
        }
        (lambda / (self.alpha * work)).powf(1.0 / (self.alpha - 1.0))
    }

    /// The dual value `λ = α w s^{α-1}` associated with speed `s` and
    /// workload `w` (the inverse of [`dual_speed`](Self::dual_speed)).
    #[inline]
    pub fn dual_value(&self, speed: f64, work: f64) -> f64 {
        self.alpha * work * speed.powf(self.alpha - 1.0)
    }
}

impl PowerFunction for AlphaPower {
    #[inline]
    fn power(&self, speed: f64) -> f64 {
        if speed <= 0.0 {
            // Round-off occasionally produces tiny negative speeds; the
            // model's power at 0 is 0 and P is only defined for s >= 0.
            return 0.0;
        }
        speed.powf(self.alpha)
    }

    #[inline]
    fn marginal(&self, speed: f64) -> f64 {
        if speed <= 0.0 {
            return 0.0;
        }
        self.alpha * speed.powf(self.alpha - 1.0)
    }

    #[inline]
    fn speed_for_marginal(&self, m: f64) -> f64 {
        if m <= 0.0 {
            return 0.0;
        }
        (m / self.alpha).powf(1.0 / (self.alpha - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-10;

    #[test]
    #[should_panic(expected = "alpha must be finite and > 1")]
    fn rejects_alpha_one() {
        AlphaPower::new(1.0);
    }

    #[test]
    fn power_and_marginal_basics() {
        let p = AlphaPower::new(3.0);
        assert_eq!(p.power(0.0), 0.0);
        assert_eq!(p.power(-1e-15), 0.0);
        assert!((p.power(2.0) - 8.0).abs() < TOL);
        assert!((p.marginal(2.0) - 12.0).abs() < TOL);
        assert_eq!(p.marginal(0.0), 0.0);
    }

    #[test]
    fn marginal_and_inverse_are_inverses() {
        let p = AlphaPower::new(2.5);
        for &s in &[0.0, 0.1, 1.0, 3.7, 100.0] {
            let m = p.marginal(s);
            assert!((p.speed_for_marginal(m) - s).abs() < 1e-8, "s = {s}");
        }
    }

    #[test]
    fn energy_for_work_uses_constant_speed() {
        let p = AlphaPower::new(3.0);
        // 4 units of work in 2 time units => speed 2, power 8, energy 16.
        assert!((p.energy_for_work(4.0, 2.0) - 16.0).abs() < TOL);
        assert_eq!(p.energy_for_work(0.0, 2.0), 0.0);
        assert!((p.energy_at_speed(2.0, 3.0) - 24.0).abs() < TOL);
    }

    #[test]
    fn energy_is_convex_in_work() {
        // Splitting work across equal-length halves at different speeds
        // never beats the constant speed (convexity sanity check).
        let p = AlphaPower::new(2.2);
        let even = p.energy_for_work(4.0, 2.0);
        let uneven = p.energy_for_work(3.0, 1.0) + p.energy_for_work(1.0, 1.0);
        assert!(even <= uneven + TOL);
    }

    #[test]
    fn analysis_constants_alpha_2() {
        let p = AlphaPower::new(2.0);
        assert!((p.competitive_ratio_pd() - 4.0).abs() < TOL);
        assert!((p.competitive_ratio_cll() - (4.0 + 2.0 * (2.0f64).exp())).abs() < TOL);
        assert!((p.delta_star() - 0.5).abs() < TOL);
        assert!((p.rejection_energy_factor() - 1.0).abs() < TOL);
        assert!((p.deterministic_lower_bound() - (1.0f64).exp() / 2.0).abs() < TOL);
    }

    #[test]
    fn analysis_constants_alpha_3() {
        let p = AlphaPower::new(3.0);
        assert!((p.competitive_ratio_pd() - 27.0).abs() < TOL);
        assert!((p.delta_star() - 1.0 / 9.0).abs() < TOL);
        assert!((p.rejection_energy_factor() - 3.0).abs() < TOL);
    }

    #[test]
    fn cll_bound_dominates_pd_bound() {
        for &a in &[1.5, 2.0, 2.5, 3.0, 4.0] {
            let p = AlphaPower::new(a);
            assert!(p.competitive_ratio_cll() > p.competitive_ratio_pd());
        }
    }

    #[test]
    fn dual_speed_and_value_are_inverses() {
        let p = AlphaPower::new(2.7);
        let w = 3.0;
        for &s in &[0.2, 1.0, 5.0] {
            let lambda = p.dual_value(s, w);
            assert!((p.dual_speed(lambda, w) - s).abs() < 1e-8);
        }
        assert_eq!(p.dual_speed(0.0, w), 0.0);
        assert_eq!(p.dual_speed(-1.0, w), 0.0);
    }

    #[test]
    fn rejection_speed_threshold_matches_energy_form() {
        // A job planned at exactly the threshold speed has planned energy
        // exactly alpha^{alpha-2} * value: energy = w * s^{alpha-1}.
        let p = AlphaPower::new(3.0);
        let (w, v) = (2.0, 5.0);
        let s = p.rejection_speed_threshold(v, w);
        let planned_energy = w * s.powf(p.alpha() - 1.0);
        assert!((planned_energy - p.rejection_energy_factor() * v).abs() < 1e-9);
    }
}
