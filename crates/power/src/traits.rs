//! The abstract power-function interface.

/// A convex, differentiable power function `P : speed → power` with
/// `P(0) = 0`.
///
/// The paper fixes `P(s) = s^α`; this trait exists so that the per-interval
/// power function machinery (`pss-chen`) and the convex-program machinery
/// (`pss-convex`) can be read — and extended — independently of that choice.
/// Implementations must guarantee:
///
/// * `power(0) == 0`,
/// * `power` is convex and strictly increasing on `s >= 0`,
/// * `marginal(s)` is the derivative `P'(s)` and is nondecreasing,
/// * `speed_for_marginal(marginal(s)) == s` for all `s >= 0`.
pub trait PowerFunction: Clone + Send + Sync {
    /// Power consumption `P(s)` at speed `s >= 0`.
    fn power(&self, speed: f64) -> f64;

    /// Derivative `P'(s)` at speed `s >= 0`.
    fn marginal(&self, speed: f64) -> f64;

    /// Inverse of [`marginal`](Self::marginal): the speed at which the
    /// derivative equals `m >= 0`.
    fn speed_for_marginal(&self, m: f64) -> f64;

    /// Energy consumed when running at constant speed `s` for `time` units:
    /// `P(s) · time`.
    fn energy_at_speed(&self, speed: f64, time: f64) -> f64 {
        self.power(speed) * time
    }

    /// Minimal energy needed to process `work` units of work within `time`
    /// time units on a single processor: achieved by running at the constant
    /// speed `work / time` (by convexity of `P`).
    fn energy_for_work(&self, work: f64, time: f64) -> f64 {
        if work <= 0.0 {
            return 0.0;
        }
        debug_assert!(time > 0.0, "cannot process positive work in zero time");
        self.energy_at_speed(work / time, time)
    }
}
