//! The primal load variables `x_{jk}` of the convex program.

use pss_types::num;
use pss_types::snapshot::{BlobReader, BlobWriter, SnapshotError, SnapshotPart};

use crate::partition::Refinement;

/// A work assignment: for every job `j` and atomic interval `k`, the
/// fraction `x_{jk} ∈ [0, 1]` of the job's workload assigned to that
/// interval.
///
/// This is the primal variable vector `x` of the paper's convex program
/// (Figure 1).  The assignment is stored densely (`n_jobs × n_intervals`)
/// because the experiment sizes keep `n·N` comfortably small (both are at
/// most a few thousand) and dense rows make the water-filling inner loops
/// cache friendly.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkAssignment {
    n_intervals: usize,
    /// Row-major: `rows[j][k] = x_{jk}`.
    rows: Vec<Vec<f64>>,
}

impl WorkAssignment {
    /// Creates an assignment with no jobs over `n_intervals` intervals.
    pub fn new(n_intervals: usize) -> Self {
        Self {
            n_intervals,
            rows: Vec::new(),
        }
    }

    /// Creates an all-zero assignment for `n_jobs` jobs over `n_intervals`
    /// intervals.
    pub fn zeros(n_jobs: usize, n_intervals: usize) -> Self {
        Self {
            n_intervals,
            rows: vec![vec![0.0; n_intervals]; n_jobs],
        }
    }

    /// Number of jobs tracked.
    #[inline]
    pub fn n_jobs(&self) -> usize {
        self.rows.len()
    }

    /// Number of atomic intervals.
    #[inline]
    pub fn n_intervals(&self) -> usize {
        self.n_intervals
    }

    /// Ensures rows exist for jobs `0..=job`, adding zero rows as needed.
    pub fn ensure_job(&mut self, job: usize) {
        while self.rows.len() <= job {
            self.rows.push(vec![0.0; self.n_intervals]);
        }
    }

    /// The fraction `x_{jk}`; zero for jobs or intervals that were never
    /// touched.
    #[inline]
    pub fn get(&self, job: usize, interval: usize) -> f64 {
        self.rows
            .get(job)
            .and_then(|r| r.get(interval))
            .copied()
            .unwrap_or(0.0)
    }

    /// Sets `x_{jk}`, growing the job table as needed.
    ///
    /// # Panics
    /// Panics if `interval` is outside the partition.
    pub fn set(&mut self, job: usize, interval: usize, value: f64) {
        assert!(
            interval < self.n_intervals,
            "interval index {interval} out of range ({} intervals)",
            self.n_intervals
        );
        self.ensure_job(job);
        self.rows[job][interval] = value;
    }

    /// Adds `delta` to `x_{jk}`.
    pub fn add(&mut self, job: usize, interval: usize, delta: f64) {
        let cur = self.get(job, interval);
        self.set(job, interval, cur + delta);
    }

    /// The row `x_{j·}` of a job (empty slice if the job is unknown).
    pub fn row(&self, job: usize) -> &[f64] {
        self.rows.get(job).map(|r| r.as_slice()).unwrap_or(&[])
    }

    /// Total assigned fraction `Σ_k x_{jk}` of a job.
    pub fn total_fraction(&self, job: usize) -> f64 {
        num::stable_sum(self.row(job).iter().copied())
    }

    /// Resets a job's whole row to zero (used when PD rejects a job).
    pub fn clear_job(&mut self, job: usize) {
        if let Some(row) = self.rows.get_mut(job) {
            row.iter_mut().for_each(|x| *x = 0.0);
        }
    }

    /// The per-interval column: fractions of every job in interval `k`.
    pub fn column(&self, interval: usize) -> Vec<f64> {
        self.rows
            .iter()
            .map(|r| r.get(interval).copied().unwrap_or(0.0))
            .collect()
    }

    /// Jobs with a strictly positive fraction in interval `k`.
    pub fn jobs_in_interval(&self, interval: usize) -> Vec<usize> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, r)| r.get(interval).copied().unwrap_or(0.0) > 0.0)
            .map(|(j, _)| j)
            .collect()
    }

    /// Applies an interval [`Refinement`]: every row is re-expressed over
    /// the refined partition, splitting each old fraction proportionally to
    /// the lengths of the new pieces (the paper's proportional split, which
    /// keeps per-interval speeds unchanged).
    pub fn apply_refinement(&mut self, refinement: &Refinement) {
        if refinement.is_identity() {
            return;
        }
        assert_eq!(
            refinement.pieces.len(),
            self.n_intervals,
            "refinement was computed for a different partition"
        );
        for row in &mut self.rows {
            let mut new_row = vec![0.0; refinement.new_len];
            for (old_k, &x) in row.iter().enumerate() {
                // pss-lint: allow(float-eq) — exact sparsity: skip true zeros
                if x == 0.0 {
                    continue;
                }
                for &(new_k, frac) in &refinement.pieces[old_k] {
                    new_row[new_k] += x * frac;
                }
            }
            *row = new_row;
        }
        self.n_intervals = refinement.new_len;
    }

    /// The work `x_{jk} · w_j` each job places in interval `k`, given the
    /// jobs' workloads.
    pub fn interval_work(&self, interval: usize, workloads: &[f64]) -> Vec<f64> {
        (0..self.n_jobs())
            .map(|j| self.get(j, interval) * workloads.get(j).copied().unwrap_or(0.0))
            .collect()
    }
}

impl SnapshotPart for WorkAssignment {
    fn encode(&self, w: &mut BlobWriter) {
        w.write_usize(self.n_intervals);
        w.write_usize(self.rows.len());
        for row in &self.rows {
            w.write_seq(row);
        }
    }

    fn decode(r: &mut BlobReader<'_>) -> Result<Self, SnapshotError> {
        let n_intervals = r.read_usize()?;
        let n_rows = r.read_len(8)?;
        let mut rows = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            let row: Vec<f64> = r.read_seq()?;
            if row.len() != n_intervals {
                return Err(SnapshotError::Invalid(format!(
                    "assignment row has {} entries for {} intervals",
                    row.len(),
                    n_intervals
                )));
            }
            rows.push(row);
        }
        Ok(Self { n_intervals, rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::IntervalPartition;

    #[test]
    fn get_set_and_totals() {
        let mut x = WorkAssignment::new(3);
        assert_eq!(x.n_jobs(), 0);
        x.set(1, 2, 0.5);
        assert_eq!(x.n_jobs(), 2);
        assert_eq!(x.get(1, 2), 0.5);
        assert_eq!(x.get(0, 0), 0.0);
        assert_eq!(x.get(7, 0), 0.0);
        x.add(1, 0, 0.25);
        assert!((x.total_fraction(1) - 0.75).abs() < 1e-12);
        assert_eq!(x.total_fraction(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_panics_on_bad_interval() {
        let mut x = WorkAssignment::new(2);
        x.set(0, 5, 0.1);
    }

    #[test]
    fn columns_and_job_queries() {
        let mut x = WorkAssignment::zeros(3, 2);
        x.set(0, 1, 0.3);
        x.set(2, 1, 0.7);
        assert_eq!(x.column(1), vec![0.3, 0.0, 0.7]);
        assert_eq!(x.jobs_in_interval(1), vec![0, 2]);
        assert_eq!(x.jobs_in_interval(0), Vec::<usize>::new());
        assert_eq!(x.interval_work(1, &[2.0, 1.0, 10.0]), vec![0.6, 0.0, 7.0]);
    }

    #[test]
    fn clear_job_zeroes_the_row() {
        let mut x = WorkAssignment::zeros(2, 2);
        x.set(1, 0, 0.4);
        x.set(1, 1, 0.6);
        x.clear_job(1);
        assert_eq!(x.total_fraction(1), 0.0);
    }

    #[test]
    fn refinement_preserves_totals_and_density() {
        // One interval [0,4) with x = 0.8; refine at t=1 => pieces 1/4, 3/4.
        let old = IntervalPartition::from_boundaries([0.0, 4.0]);
        let (_, map) = old.refine([1.0]);
        let mut x = WorkAssignment::zeros(1, 1);
        x.set(0, 0, 0.8);
        x.apply_refinement(&map);
        assert_eq!(x.n_intervals(), 2);
        assert!((x.get(0, 0) - 0.2).abs() < 1e-12);
        assert!((x.get(0, 1) - 0.6).abs() < 1e-12);
        assert!((x.total_fraction(0) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn identity_refinement_is_a_noop() {
        let old = IntervalPartition::from_boundaries([0.0, 1.0, 2.0]);
        let (_, map) = old.refine([]);
        let mut x = WorkAssignment::zeros(1, 2);
        x.set(0, 0, 0.5);
        let before = x.clone();
        x.apply_refinement(&map);
        assert_eq!(x, before);
    }
}
