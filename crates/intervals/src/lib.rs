//! # pss-intervals
//!
//! Atomic-interval machinery (Section 2.1 of the paper).
//!
//! The convex-programming formulation of the scheduling problem partitions
//! time into *atomic intervals* `T_k = [τ_{k-1}, τ_k)` whose boundaries are
//! exactly the release times and deadlines of the jobs.  Within an atomic
//! interval the set of available jobs does not change, which is what makes
//! the per-interval power function of `pss-chen` well defined.
//!
//! This crate provides:
//!
//! * [`IntervalPartition`] — the ordered boundary set and the induced
//!   intervals, with availability tests (`c_jk` of the paper),
//! * [`Refinement`] — the bookkeeping needed when a newly released job adds
//!   boundaries to an existing partition (the online case discussed in
//!   Section 3, "Concerning the Time Partitioning"): old intervals are split
//!   and already-assigned work is divided proportionally to the lengths of
//!   the pieces,
//! * [`WorkAssignment`] — the primal variables `x_{jk}` of the convex
//!   program: for every job, the fraction of its workload assigned to each
//!   atomic interval.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod assignment;
pub mod partition;

pub use assignment::WorkAssignment;
pub use partition::{AtomicInterval, BoundaryInsert, IntervalPartition, Refinement};
