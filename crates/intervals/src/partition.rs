//! Atomic interval partitions and their online refinement.

use pss_types::snapshot::{BlobReader, BlobWriter, SnapshotError, SnapshotPart};
use pss_types::{num, Job};

/// Boundary coincidence tolerance: release/deadline values closer than this
/// are treated as the same time point when building partitions.
const BOUNDARY_EPS: f64 = 1e-12;

/// One atomic interval `T_k = [start, end)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtomicInterval {
    /// Index `k` of the interval within its partition.
    pub index: usize,
    /// Left endpoint `τ_{k-1}` (inclusive).
    pub start: f64,
    /// Right endpoint `τ_k` (exclusive).
    pub end: f64,
}

impl AtomicInterval {
    /// Length `l_k = τ_k − τ_{k-1}` of the interval.
    #[inline]
    pub fn length(&self) -> f64 {
        self.end - self.start
    }
}

/// A partition of the time horizon into atomic intervals, induced by a set
/// of boundary time points (the jobs' release times and deadlines).
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalPartition {
    boundaries: Vec<f64>,
}

impl IntervalPartition {
    /// Builds the partition induced by the given boundary points.  Points
    /// closer together than an absolute tolerance of `1e-12` are merged and
    /// the result is sorted.
    pub fn from_boundaries(points: impl IntoIterator<Item = f64>) -> Self {
        let mut pts: Vec<f64> = points.into_iter().filter(|p| p.is_finite()).collect();
        pts.sort_by(f64::total_cmp);
        let mut boundaries: Vec<f64> = Vec::with_capacity(pts.len());
        for p in pts {
            if boundaries.last().is_none_or(|last| p - last > BOUNDARY_EPS) {
                boundaries.push(p);
            }
        }
        Self { boundaries }
    }

    /// Builds the partition induced by the release times and deadlines of
    /// the given jobs (the `{ r_j, d_j | j ∈ J }` of the paper).
    pub fn from_jobs<'a>(jobs: impl IntoIterator<Item = &'a Job>) -> Self {
        Self::from_boundaries(jobs.into_iter().flat_map(|j| [j.release, j.deadline]))
    }

    /// The ordered boundary points `τ_0 < τ_1 < … < τ_N`.
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    /// Number of atomic intervals `N` (0 if fewer than two boundaries).
    #[inline]
    pub fn len(&self) -> usize {
        self.boundaries.len().saturating_sub(1)
    }

    /// Returns `true` if the partition has no intervals.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `k`-th atomic interval.
    ///
    /// # Panics
    /// Panics if `k >= self.len()`.
    pub fn interval(&self, k: usize) -> AtomicInterval {
        assert!(k < self.len(), "interval index {k} out of range");
        AtomicInterval {
            index: k,
            start: self.boundaries[k],
            end: self.boundaries[k + 1],
        }
    }

    /// Iterator over all atomic intervals in time order.
    pub fn intervals(&self) -> impl Iterator<Item = AtomicInterval> + '_ {
        (0..self.len()).map(move |k| self.interval(k))
    }

    /// Length `l_k` of interval `k`.
    #[inline]
    pub fn length(&self, k: usize) -> f64 {
        self.interval(k).length()
    }

    /// The availability indicator `c_{jk}`: `true` iff `T_k ⊆ [r_j, d_j)`.
    pub fn job_covers(&self, job: &Job, k: usize) -> bool {
        let iv = self.interval(k);
        job.covers(iv.start, iv.end)
    }

    /// Indices of all intervals contained in the job's availability window.
    ///
    /// Runs in `O(log N + |result|)`: because every partition in the
    /// workspace contains the window endpoints of the jobs it was built
    /// from, the covered set is a contiguous index range, found here by
    /// binary search (the incremental online context calls this once per
    /// arrival).
    pub fn covered_intervals(&self, job: &Job) -> Vec<usize> {
        let n = self.len();
        if n == 0 {
            return Vec::new();
        }
        let starts = &self.boundaries[..n];
        let ends = &self.boundaries[1..];
        // Coarse bracket by raw comparison, widened to respect the
        // tolerance-aware `job_covers` predicate.
        let mut lo = starts.partition_point(|&s| s < job.release);
        while lo > 0 && num::approx_le(job.release, starts[lo - 1]) {
            lo -= 1;
        }
        let mut hi = ends.partition_point(|&e| e <= job.deadline);
        while hi < n && num::approx_le(ends[hi], job.deadline) {
            hi += 1;
        }
        let covered: Vec<usize> = (lo..hi).filter(|&k| self.job_covers(job, k)).collect();
        debug_assert_eq!(
            covered,
            (0..n)
                .filter(|&k| self.job_covers(job, k))
                .collect::<Vec<_>>(),
            "binary-searched coverage disagrees with the linear scan"
        );
        covered
    }

    /// Index of the interval containing time `t`, if any.
    pub fn interval_containing(&self, t: f64) -> Option<usize> {
        if self.is_empty() {
            return None;
        }
        // Binary search over boundaries.
        let n = self.len();
        if t < self.boundaries[0] || t >= self.boundaries[n] {
            return None;
        }
        let mut lo = 0usize;
        let mut hi = n; // intervals 0..n
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if self.boundaries[mid] <= t {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(lo)
    }

    /// Refines the partition with additional boundary points (typically the
    /// release time and deadline of a newly arrived job), returning the new
    /// partition and the [`Refinement`] mapping old intervals to the new
    /// pieces they were split into.
    pub fn refine(
        &self,
        new_points: impl IntoIterator<Item = f64>,
    ) -> (IntervalPartition, Refinement) {
        let refined =
            IntervalPartition::from_boundaries(self.boundaries.iter().copied().chain(new_points));
        let mapping = Refinement::between(self, &refined);
        (refined, mapping)
    }

    /// Inserts a single boundary point **in place** and reports the local
    /// effect, without constructing a new partition or a full
    /// [`Refinement`].  This is the `O(log N)`-search/`O(tail)`-memmove
    /// primitive the persistent online planning contexts use per arrival
    /// (new boundaries arrive in nondecreasing time order, so the moved tail
    /// is short); [`refine`](Self::refine) remains the general entry point.
    ///
    /// Points within the boundary-coincidence tolerance of an existing
    /// boundary are merged (the existing boundary wins), matching
    /// [`from_boundaries`](Self::from_boundaries); non-finite points are
    /// ignored.
    pub fn insert_boundary(&mut self, p: f64) -> BoundaryInsert {
        if !p.is_finite() {
            return BoundaryInsert::Existing;
        }
        let pos = self.boundaries.partition_point(|&b| b < p);
        if pos < self.boundaries.len() && self.boundaries[pos] - p <= BOUNDARY_EPS {
            return BoundaryInsert::Existing;
        }
        if pos > 0 && p - self.boundaries[pos - 1] <= BOUNDARY_EPS {
            return BoundaryInsert::Existing;
        }
        self.boundaries.insert(pos, p);
        let n = self.boundaries.len();
        if pos == n - 1 {
            BoundaryInsert::Append {
                created_interval: n >= 2,
            }
        } else if pos == 0 {
            BoundaryInsert::Prepend {
                created_interval: n >= 2,
            }
        } else {
            let left = self.boundaries[pos - 1];
            let right = self.boundaries[pos + 1];
            BoundaryInsert::Split {
                interval: pos - 1,
                left_fraction: (p - left) / (right - left),
            }
        }
    }
}

impl SnapshotPart for IntervalPartition {
    fn encode(&self, w: &mut BlobWriter) {
        w.write_seq(&self.boundaries);
    }

    fn decode(r: &mut BlobReader<'_>) -> Result<Self, SnapshotError> {
        // Restored verbatim: the boundaries were sorted/deduped when the
        // partition was built, and a restore must reproduce the exact bit
        // pattern (re-running `from_boundaries` could merge points that an
        // in-place `insert_boundary` history kept distinct).
        let boundaries: Vec<f64> = r.read_seq()?;
        for pair in boundaries.windows(2) {
            // NaNs fail this check too (the comparison is false for them).
            if pair[0] >= pair[1] || !pair[0].is_finite() || !pair[1].is_finite() {
                return Err(SnapshotError::Invalid(
                    "partition boundaries not strictly increasing".into(),
                ));
            }
        }
        Ok(Self { boundaries })
    }
}

/// The local effect of [`IntervalPartition::insert_boundary`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoundaryInsert {
    /// The point coincided (within tolerance) with an existing boundary, or
    /// was not finite; the partition is unchanged.
    Existing,
    /// Interval `interval` was split in two: the left piece keeps the index
    /// and `left_fraction` of the length, the right piece is inserted at
    /// `interval + 1` (later intervals shift up by one).
    Split {
        /// Index of the split interval (and of its left piece).
        interval: usize,
        /// Length fraction of the left piece.
        left_fraction: f64,
    },
    /// The point lies before every existing boundary; if an interval was
    /// created it has index 0 and every existing interval shifts up by one.
    Prepend {
        /// Whether a new leading interval was created (false when the
        /// partition previously had no boundary at all).
        created_interval: bool,
    },
    /// The point lies after every existing boundary; if an interval was
    /// created it is the new last interval.
    Append {
        /// Whether a new trailing interval was created.
        created_interval: bool,
    },
}

/// Describes how the intervals of an old partition map onto the intervals of
/// a refined partition.
///
/// For every old interval `k`, `pieces[k]` lists the new interval indices it
/// was split into together with the fraction of the old length each piece
/// represents.  Work already assigned to the old interval is split according
/// to these fractions — exactly the proportional split described in the
/// paper's "Concerning the Time Partitioning" paragraph, which leaves the
/// produced schedule unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct Refinement {
    /// For each old interval, the `(new_index, length_fraction)` pieces.
    pub pieces: Vec<Vec<(usize, f64)>>,
    /// Number of intervals in the refined partition.
    pub new_len: usize,
}

impl Refinement {
    /// Computes the refinement mapping from `old` to `new`.  `new` must be a
    /// refinement of `old` (every old boundary is also a new boundary); this
    /// is guaranteed by [`IntervalPartition::refine`].
    ///
    /// Runs in `O(old.len() + new.len())` by walking both sorted interval
    /// lists in lockstep — this is on the per-arrival path of the online
    /// algorithms, which refine the partition with every new job.
    pub fn between(old: &IntervalPartition, new: &IntervalPartition) -> Self {
        let mut pieces = vec![Vec::new(); old.len()];
        let mut nk = 0usize;
        for (k, old_iv) in old.intervals().enumerate() {
            let old_len = old_iv.length();
            // Skip new intervals lying entirely before the old one (points
            // added before the old horizon create such intervals).
            while nk < new.len() && num::approx_le(new.interval(nk).end, old_iv.start) {
                nk += 1;
            }
            // Collect the new intervals contained in the old one; because
            // `new` refines `old`, containment and disjointness are the only
            // possibilities, and the contained ones are consecutive.
            while nk < new.len() {
                let new_iv = new.interval(nk);
                if !(num::approx_ge(new_iv.start, old_iv.start)
                    && num::approx_le(new_iv.end, old_iv.end))
                {
                    break;
                }
                let frac = if old_len > 0.0 {
                    new_iv.length() / old_len
                } else {
                    0.0
                };
                pieces[k].push((new_iv.index, frac));
                nk += 1;
            }
            debug_assert!(
                num::approx_eq(pieces[k].iter().map(|(_, f)| *f).sum::<f64>(), 1.0)
                    // pss-lint: allow(float-eq) — exact degenerate-interval sentinel
                    || old_len == 0.0,
                "refinement pieces of interval {k} do not cover it"
            );
        }
        Self {
            pieces,
            new_len: new.len(),
        }
    }

    /// Returns `true` if the refinement is the identity (no interval was
    /// split and the count is unchanged).
    pub fn is_identity(&self) -> bool {
        self.pieces.len() == self.new_len
            && self
                .pieces
                .iter()
                .enumerate()
                .all(|(k, p)| p.len() == 1 && p[0].0 == k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_types::Job;

    fn jobs() -> Vec<Job> {
        vec![
            Job::new(0, 0.0, 4.0, 2.0, 1.0),
            Job::new(1, 1.0, 3.0, 1.0, 1.0),
        ]
    }

    #[test]
    fn partition_from_jobs_has_expected_boundaries() {
        let p = IntervalPartition::from_jobs(&jobs());
        assert_eq!(p.boundaries(), &[0.0, 1.0, 3.0, 4.0]);
        assert_eq!(p.len(), 3);
        let iv = p.interval(1);
        assert_eq!((iv.start, iv.end), (1.0, 3.0));
        assert_eq!(iv.length(), 2.0);
    }

    #[test]
    fn duplicate_boundaries_are_merged() {
        let p = IntervalPartition::from_boundaries([0.0, 1.0, 1.0 + 1e-15, 2.0]);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn empty_and_single_boundary_partitions() {
        let p = IntervalPartition::from_boundaries(std::iter::empty());
        assert!(p.is_empty());
        let p = IntervalPartition::from_boundaries([3.0]);
        assert!(p.is_empty());
        assert_eq!(p.interval_containing(3.0), None);
    }

    #[test]
    fn job_coverage_matches_paper_definition() {
        let js = jobs();
        let p = IntervalPartition::from_jobs(&js);
        // Job 0 covers all three intervals, job 1 only the middle one.
        assert_eq!(p.covered_intervals(&js[0]), vec![0, 1, 2]);
        assert_eq!(p.covered_intervals(&js[1]), vec![1]);
        assert!(p.job_covers(&js[0], 0));
        assert!(!p.job_covers(&js[1], 0));
    }

    #[test]
    fn interval_containing_finds_the_right_interval() {
        let p = IntervalPartition::from_boundaries([0.0, 1.0, 3.0, 4.0]);
        assert_eq!(p.interval_containing(0.0), Some(0));
        assert_eq!(p.interval_containing(0.99), Some(0));
        assert_eq!(p.interval_containing(1.0), Some(1));
        assert_eq!(p.interval_containing(3.5), Some(2));
        assert_eq!(p.interval_containing(4.0), None);
        assert_eq!(p.interval_containing(-0.1), None);
    }

    #[test]
    fn refinement_splits_proportionally() {
        let p = IntervalPartition::from_boundaries([0.0, 4.0]);
        let (refined, map) = p.refine([1.0]);
        assert_eq!(refined.len(), 2);
        assert_eq!(map.pieces.len(), 1);
        let pieces = &map.pieces[0];
        assert_eq!(pieces.len(), 2);
        assert_eq!(pieces[0].0, 0);
        assert!((pieces[0].1 - 0.25).abs() < 1e-12);
        assert_eq!(pieces[1].0, 1);
        assert!((pieces[1].1 - 0.75).abs() < 1e-12);
        assert!(!map.is_identity());
    }

    #[test]
    fn refinement_with_no_new_points_is_identity() {
        let p = IntervalPartition::from_boundaries([0.0, 1.0, 2.0]);
        let (refined, map) = p.refine([1.0]);
        assert_eq!(refined, p);
        assert!(map.is_identity());
    }

    #[test]
    fn insert_boundary_reports_local_effects() {
        let mut p = IntervalPartition::from_boundaries(std::iter::empty());
        // First point: no interval yet.
        assert_eq!(
            p.insert_boundary(2.0),
            BoundaryInsert::Append {
                created_interval: false
            }
        );
        // Second point after it: creates the first interval.
        assert_eq!(
            p.insert_boundary(4.0),
            BoundaryInsert::Append {
                created_interval: true
            }
        );
        // Coinciding point: merged.
        assert_eq!(p.insert_boundary(4.0 + 1e-15), BoundaryInsert::Existing);
        // Interior point: splits interval 0 at 3/4 of its length.
        match p.insert_boundary(3.5) {
            BoundaryInsert::Split {
                interval,
                left_fraction,
            } => {
                assert_eq!(interval, 0);
                assert!((left_fraction - 0.75).abs() < 1e-12);
            }
            other => panic!("expected split, got {other:?}"),
        }
        // Point before everything: prepends an interval.
        assert_eq!(
            p.insert_boundary(1.0),
            BoundaryInsert::Prepend {
                created_interval: true
            }
        );
        assert_eq!(p.boundaries(), &[1.0, 2.0, 3.5, 4.0]);
        // The result matches the batch construction.
        let batch = IntervalPartition::from_boundaries([2.0, 4.0, 3.5, 1.0]);
        assert_eq!(p, batch);
    }

    #[test]
    fn covered_intervals_binary_search_handles_partial_overlap() {
        // Window strictly inside one interval: covers nothing.
        let p = IntervalPartition::from_boundaries([0.0, 4.0, 8.0]);
        let inside = Job::new(0, 1.0, 3.0, 1.0, 1.0);
        assert!(p.covered_intervals(&inside).is_empty());
        // Window starting before and ending inside: covers only the first.
        let p = IntervalPartition::from_boundaries([0.0, 1.0, 2.0, 3.0]);
        let job = Job::new(0, 0.0, 2.5, 1.0, 1.0);
        assert_eq!(p.covered_intervals(&job), vec![0, 1]);
    }

    #[test]
    fn refinement_with_points_outside_extends_partition() {
        // A new job whose window extends past the old horizon adds intervals
        // at the end; old intervals map onto themselves.
        let p = IntervalPartition::from_boundaries([0.0, 2.0]);
        let (refined, map) = p.refine([2.0, 5.0]);
        assert_eq!(refined.len(), 2);
        assert_eq!(map.pieces[0], vec![(0, 1.0)]);
        assert!(!map.is_identity()); // counts differ (1 old vs 2 new)
    }
}
