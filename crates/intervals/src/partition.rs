//! Atomic interval partitions and their online refinement.

use pss_types::{num, Job};

/// Boundary coincidence tolerance: release/deadline values closer than this
/// are treated as the same time point when building partitions.
const BOUNDARY_EPS: f64 = 1e-12;

/// One atomic interval `T_k = [start, end)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtomicInterval {
    /// Index `k` of the interval within its partition.
    pub index: usize,
    /// Left endpoint `τ_{k-1}` (inclusive).
    pub start: f64,
    /// Right endpoint `τ_k` (exclusive).
    pub end: f64,
}

impl AtomicInterval {
    /// Length `l_k = τ_k − τ_{k-1}` of the interval.
    #[inline]
    pub fn length(&self) -> f64 {
        self.end - self.start
    }
}

/// A partition of the time horizon into atomic intervals, induced by a set
/// of boundary time points (the jobs' release times and deadlines).
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalPartition {
    boundaries: Vec<f64>,
}

impl IntervalPartition {
    /// Builds the partition induced by the given boundary points.  Points
    /// closer together than an absolute tolerance of `1e-12` are merged and
    /// the result is sorted.
    pub fn from_boundaries(points: impl IntoIterator<Item = f64>) -> Self {
        let mut pts: Vec<f64> = points.into_iter().filter(|p| p.is_finite()).collect();
        pts.sort_by(|a, b| a.partial_cmp(b).expect("finite boundaries"));
        let mut boundaries: Vec<f64> = Vec::with_capacity(pts.len());
        for p in pts {
            if boundaries.last().is_none_or(|last| p - last > BOUNDARY_EPS) {
                boundaries.push(p);
            }
        }
        Self { boundaries }
    }

    /// Builds the partition induced by the release times and deadlines of
    /// the given jobs (the `{ r_j, d_j | j ∈ J }` of the paper).
    pub fn from_jobs<'a>(jobs: impl IntoIterator<Item = &'a Job>) -> Self {
        Self::from_boundaries(jobs.into_iter().flat_map(|j| [j.release, j.deadline]))
    }

    /// The ordered boundary points `τ_0 < τ_1 < … < τ_N`.
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    /// Number of atomic intervals `N` (0 if fewer than two boundaries).
    #[inline]
    pub fn len(&self) -> usize {
        self.boundaries.len().saturating_sub(1)
    }

    /// Returns `true` if the partition has no intervals.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `k`-th atomic interval.
    ///
    /// # Panics
    /// Panics if `k >= self.len()`.
    pub fn interval(&self, k: usize) -> AtomicInterval {
        assert!(k < self.len(), "interval index {k} out of range");
        AtomicInterval {
            index: k,
            start: self.boundaries[k],
            end: self.boundaries[k + 1],
        }
    }

    /// Iterator over all atomic intervals in time order.
    pub fn intervals(&self) -> impl Iterator<Item = AtomicInterval> + '_ {
        (0..self.len()).map(move |k| self.interval(k))
    }

    /// Length `l_k` of interval `k`.
    #[inline]
    pub fn length(&self, k: usize) -> f64 {
        self.interval(k).length()
    }

    /// The availability indicator `c_{jk}`: `true` iff `T_k ⊆ [r_j, d_j)`.
    pub fn job_covers(&self, job: &Job, k: usize) -> bool {
        let iv = self.interval(k);
        job.covers(iv.start, iv.end)
    }

    /// Indices of all intervals contained in the job's availability window.
    pub fn covered_intervals(&self, job: &Job) -> Vec<usize> {
        (0..self.len())
            .filter(|&k| self.job_covers(job, k))
            .collect()
    }

    /// Index of the interval containing time `t`, if any.
    pub fn interval_containing(&self, t: f64) -> Option<usize> {
        if self.is_empty() {
            return None;
        }
        // Binary search over boundaries.
        let n = self.len();
        if t < self.boundaries[0] || t >= self.boundaries[n] {
            return None;
        }
        let mut lo = 0usize;
        let mut hi = n; // intervals 0..n
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if self.boundaries[mid] <= t {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(lo)
    }

    /// Refines the partition with additional boundary points (typically the
    /// release time and deadline of a newly arrived job), returning the new
    /// partition and the [`Refinement`] mapping old intervals to the new
    /// pieces they were split into.
    pub fn refine(
        &self,
        new_points: impl IntoIterator<Item = f64>,
    ) -> (IntervalPartition, Refinement) {
        let refined =
            IntervalPartition::from_boundaries(self.boundaries.iter().copied().chain(new_points));
        let mapping = Refinement::between(self, &refined);
        (refined, mapping)
    }
}

/// Describes how the intervals of an old partition map onto the intervals of
/// a refined partition.
///
/// For every old interval `k`, `pieces[k]` lists the new interval indices it
/// was split into together with the fraction of the old length each piece
/// represents.  Work already assigned to the old interval is split according
/// to these fractions — exactly the proportional split described in the
/// paper's "Concerning the Time Partitioning" paragraph, which leaves the
/// produced schedule unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct Refinement {
    /// For each old interval, the `(new_index, length_fraction)` pieces.
    pub pieces: Vec<Vec<(usize, f64)>>,
    /// Number of intervals in the refined partition.
    pub new_len: usize,
}

impl Refinement {
    /// Computes the refinement mapping from `old` to `new`.  `new` must be a
    /// refinement of `old` (every old boundary is also a new boundary); this
    /// is guaranteed by [`IntervalPartition::refine`].
    pub fn between(old: &IntervalPartition, new: &IntervalPartition) -> Self {
        let mut pieces = vec![Vec::new(); old.len()];
        for (k, old_iv) in old.intervals().enumerate() {
            let old_len = old_iv.length();
            for new_iv in new.intervals() {
                // A new interval belongs to the old one if it is contained
                // in it (refinement => containment or disjointness).
                if num::approx_ge(new_iv.start, old_iv.start)
                    && num::approx_le(new_iv.end, old_iv.end)
                {
                    let frac = if old_len > 0.0 {
                        new_iv.length() / old_len
                    } else {
                        0.0
                    };
                    pieces[k].push((new_iv.index, frac));
                }
            }
            debug_assert!(
                num::approx_eq(pieces[k].iter().map(|(_, f)| *f).sum::<f64>(), 1.0)
                    || old_len == 0.0,
                "refinement pieces of interval {k} do not cover it"
            );
        }
        Self {
            pieces,
            new_len: new.len(),
        }
    }

    /// Returns `true` if the refinement is the identity (no interval was
    /// split and the count is unchanged).
    pub fn is_identity(&self) -> bool {
        self.pieces.len() == self.new_len
            && self
                .pieces
                .iter()
                .enumerate()
                .all(|(k, p)| p.len() == 1 && p[0].0 == k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_types::Job;

    fn jobs() -> Vec<Job> {
        vec![
            Job::new(0, 0.0, 4.0, 2.0, 1.0),
            Job::new(1, 1.0, 3.0, 1.0, 1.0),
        ]
    }

    #[test]
    fn partition_from_jobs_has_expected_boundaries() {
        let p = IntervalPartition::from_jobs(&jobs());
        assert_eq!(p.boundaries(), &[0.0, 1.0, 3.0, 4.0]);
        assert_eq!(p.len(), 3);
        let iv = p.interval(1);
        assert_eq!((iv.start, iv.end), (1.0, 3.0));
        assert_eq!(iv.length(), 2.0);
    }

    #[test]
    fn duplicate_boundaries_are_merged() {
        let p = IntervalPartition::from_boundaries([0.0, 1.0, 1.0 + 1e-15, 2.0]);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn empty_and_single_boundary_partitions() {
        let p = IntervalPartition::from_boundaries(std::iter::empty());
        assert!(p.is_empty());
        let p = IntervalPartition::from_boundaries([3.0]);
        assert!(p.is_empty());
        assert_eq!(p.interval_containing(3.0), None);
    }

    #[test]
    fn job_coverage_matches_paper_definition() {
        let js = jobs();
        let p = IntervalPartition::from_jobs(&js);
        // Job 0 covers all three intervals, job 1 only the middle one.
        assert_eq!(p.covered_intervals(&js[0]), vec![0, 1, 2]);
        assert_eq!(p.covered_intervals(&js[1]), vec![1]);
        assert!(p.job_covers(&js[0], 0));
        assert!(!p.job_covers(&js[1], 0));
    }

    #[test]
    fn interval_containing_finds_the_right_interval() {
        let p = IntervalPartition::from_boundaries([0.0, 1.0, 3.0, 4.0]);
        assert_eq!(p.interval_containing(0.0), Some(0));
        assert_eq!(p.interval_containing(0.99), Some(0));
        assert_eq!(p.interval_containing(1.0), Some(1));
        assert_eq!(p.interval_containing(3.5), Some(2));
        assert_eq!(p.interval_containing(4.0), None);
        assert_eq!(p.interval_containing(-0.1), None);
    }

    #[test]
    fn refinement_splits_proportionally() {
        let p = IntervalPartition::from_boundaries([0.0, 4.0]);
        let (refined, map) = p.refine([1.0]);
        assert_eq!(refined.len(), 2);
        assert_eq!(map.pieces.len(), 1);
        let pieces = &map.pieces[0];
        assert_eq!(pieces.len(), 2);
        assert_eq!(pieces[0].0, 0);
        assert!((pieces[0].1 - 0.25).abs() < 1e-12);
        assert_eq!(pieces[1].0, 1);
        assert!((pieces[1].1 - 0.75).abs() < 1e-12);
        assert!(!map.is_identity());
    }

    #[test]
    fn refinement_with_no_new_points_is_identity() {
        let p = IntervalPartition::from_boundaries([0.0, 1.0, 2.0]);
        let (refined, map) = p.refine([1.0]);
        assert_eq!(refined, p);
        assert!(map.is_identity());
    }

    #[test]
    fn refinement_with_points_outside_extends_partition() {
        // A new job whose window extends past the old horizon adds intervals
        // at the end; old intervals map onto themselves.
        let p = IntervalPartition::from_boundaries([0.0, 2.0]);
        let (refined, map) = p.refine([2.0, 5.0]);
        assert_eq!(refined.len(), 2);
        assert_eq!(map.pieces[0], vec![(0, 1.0)]);
        assert!(!map.is_identity()); // counts differ (1 old vs 2 new)
    }
}
