//! The ingestion daemon: sharded worker threads draining lock-free arrival
//! queues into long-running [`OnlineScheduler`] runs, with dual-price
//! backpressure at admission and a checkpointed crash / hand-off / drain
//! lifecycle.
//!
//! # Architecture
//!
//! ```text
//! TenantHandle ──submit()──▶ admission gates ──▶ ArrivalQueue ─┐  (shard 0)
//! TenantHandle ──submit()──▶ (validate, stale,                 ├─▶ worker ─▶ A::Run
//!    ...                      quota, dual price)               │   thread
//! TenantHandle ──────────────────────────────▶ ArrivalQueue ───┘  (shard 1) ...
//! ```
//!
//! Each shard owns one scheduler run and one worker thread.  The worker
//! drains its queue in bounded chunks, splits the chunk into *bursts* with
//! the same maximal-run rule as `pss_sim::coalesce_arrivals` (releases
//! within `coalesce_window` of the burst's first), and feeds each burst
//! through one [`OnlineScheduler::on_arrivals`] call — so a b-job burst
//! costs one replan instead of b, automatically, exactly when load is high
//! enough for the queue to hold a backlog.  Dense [`JobId`]s are assigned
//! in feed order, making each shard's fed stream a valid standalone
//! instance.
//!
//! # Backpressure
//!
//! The duals the scheduler emits (λ_j on acceptance, the lost value v_j on
//! rejection) are folded into a per-shard rolling EWMA — the *price* —
//! decision by decision, so a shard drowning in rejections *raises* its
//! published price instead of freezing it (rejection-only batches used to
//! be skipped, which starved the signal and made cheapest-price routing
//! herd — the E17 finding).  A batch with no decisions at all leaves the
//! price bit-unchanged and never NaN (see `feed_batch`).
//! Admission compares the price against `min(tenant price ceiling, job
//! value)`: a submission whose declared value cannot cover the current
//! marginal price is deferred (retryable) or rejected at the boundary,
//! per the tenant's [`BackpressurePolicy`],
//! before it ever loads the scheduler.  Ahead of the price gate sit the
//! cheaper gates: model-field validation, the staleness window, the
//! tenant's outstanding-jobs quota and the bounded queue itself.
//!
//! # Lifecycle and determinism
//!
//! Workers act on lifecycle signals (crash injection, hand-off, shutdown)
//! only at *quiescent batch boundaries* — with no drained-but-unfed
//! arrivals in hand — so a dying worker never loses work it acknowledged.
//! Every fed batch is first appended to a durable in-memory journal, and
//! the segments the batch *committed* are mirrored into the shard's
//! append-only [`SegmentLog`] (one checksummed record per batch, under the
//! journal lock).  The worker checkpoints its run every `checkpoint_every`
//! batches as a `StateBlob` wire image, kept in a bounded per-shard
//! *chain* of the `checkpoint_chain` newest blobs.  By default a blob
//! holds only the run's *live* state plus a log cursor — O(active) bytes,
//! independent of how long the shard has been fed — and the log's record
//! envelopes are compacted below the newest retained cursor at each
//! capture (segment data is never dropped, so every retained blob still
//! reassembles).  [`ServeConfig::full_frontier_checkpoints`] restores the
//! legacy inline-frontier blobs as a differential baseline.
//!
//! Recovery restores the run from the newest blob that decodes against
//! the log (a corrupted checkpoint costs replay length, not the shard),
//! rewinds the derived records *and the log* to that checkpoint's cursor
//! (write-ahead discipline: replay re-commits the truncated segments
//! through the run itself), and replays the journal delta — reproducing
//! the pre-crash decisions bit-for-bit, because every run's restore is
//! bit-identical and the journal fixes feed times and id assignment.  If
//! the whole chain is corrupt, the run restarts cold, the log resets and
//! the full journal replays: the journal is the source of truth,
//! checkpoints only shorten replay.  A hand-off is the graceful special
//! case: checkpoint at the boundary, exit, ship the `(log tail, blob)`
//! pair, restore on a fresh thread with an empty delta.  A
//! `watchdog_sweep` on the control plane reaps dead workers (injected
//! crashes, poisoned runs) and auto-recovers them with capped consecutive
//! attempts.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

// All shared-state atomics go through the `pss_check` facade: identical
// `std` re-exports in normal builds, model-checked replacements under
// `--cfg pss_model_check`.  This file and `queue.rs` are the only places
// outside the facade allowed to spell `Ordering::` (enforced by
// `pss-lint`); every use below carries its ordering contract in a
// comment.
use pss_check::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use pss_metrics::DrainSummary;
use pss_types::{
    fold_price, Checkpointable, Decision, IngressError, Job, JobEnvelope, JobId, LogCheckpointable,
    LogCursor, OnlineAlgorithm, OnlineScheduler, Schedule, ScheduleError, SegmentLog, StateBlob,
    TenantId,
};

use crate::queue::ArrivalQueue;
use crate::report::{ServedEvent, ServiceReport, ShardReport};
use crate::tenant::{BackpressurePolicy, TenantSpec, TenantState};

/// How long an idle worker parks between queue polls.  Bounded parking
/// (rather than unbounded park/unpark handshakes) keeps the loop correct
/// even if an unpark races worker startup.
const IDLE_PARK: Duration = Duration::from_micros(100);

/// Static configuration of a service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Machines per shard run.
    pub machines: usize,
    /// Energy exponent α > 1.
    pub alpha: f64,
    /// Number of shards (independent queues, workers and scheduler runs).
    pub shards: usize,
    /// Capacity of each shard's arrival queue (rounded up to a power of
    /// two).  A full queue is the outermost backpressure layer.
    pub queue_capacity: usize,
    /// Burst-coalescing window: consecutive drained arrivals whose releases
    /// lie within this window of a burst's first are fed as one batch.
    /// `0.0` feeds every arrival individually.
    pub coalesce_window: f64,
    /// Most arrivals a worker drains from its queue per chunk.
    pub max_batch: usize,
    /// Checkpoint the run every this many ingestion batches (`0` keeps
    /// only the initial checkpoint).
    pub checkpoint_every: usize,
    /// How many checkpoints each shard retains (a bounded *chain*, newest
    /// last).  Recovery restores from the newest blob that decodes and
    /// replays the correspondingly longer journal delta, so a corrupted
    /// latest checkpoint degrades replay cost instead of killing the
    /// shard.  Must be at least 1.
    pub checkpoint_chain: usize,
    /// How many consecutive automatic recoveries [`Daemon::watchdog_sweep`]
    /// attempts per shard before giving up (the verdict turns into
    /// [`WatchdogVerdict::GaveUp`]).  Must be at least 1.  A sweep that
    /// finds the shard healthy resets the counter.
    pub max_recovery_attempts: usize,
    /// EWMA weight β ∈ (0, 1] of the rolling dual price:
    /// `price ← (1-β)·price + β·dual` per decision.
    pub price_smoothing: f64,
    /// How far a submission's release may lie behind the shard's feed
    /// watermark and still be admitted; beyond it the submission is
    /// rejected as stale.  `f64::INFINITY` (the default) never rejects on
    /// lateness alone — late jobs are fed at the watermark.  Independent
    /// of the tolerance, a job whose *deadline* the watermark has already
    /// passed is rejected as expired (dead on arrival), and one whose
    /// deadline the watermark overtakes while it waits in the queue is
    /// rejected at feed time without being shown to the scheduler.
    pub stale_tolerance: f64,
    /// Start with ingestion paused (workers park, queues fill).  Used by
    /// deterministic tests to control batching; [`Daemon::resume`] unpauses.
    pub start_paused: bool,
    /// Capture legacy full-frontier checkpoint blobs (the committed
    /// frontier inline in every `StateBlob`, O(events) bytes) instead of
    /// the default O(active) live-state blobs backed by the shard's
    /// segment log.  Retained as the differential baseline E18 and the
    /// chaos drills compare against.
    pub full_frontier_checkpoints: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            machines: 1,
            alpha: 2.0,
            shards: 1,
            queue_capacity: 1024,
            coalesce_window: 0.0,
            max_batch: 256,
            checkpoint_every: 64,
            checkpoint_chain: 4,
            max_recovery_attempts: 3,
            price_smoothing: 0.1,
            stale_tolerance: f64::INFINITY,
            start_paused: false,
            full_frontier_checkpoints: false,
        }
    }
}

impl ServeConfig {
    /// Toggles legacy full-frontier checkpoint blobs (the differential
    /// baseline; the default captures O(active) live-state blobs plus the
    /// shard's segment log).
    pub fn with_full_frontier_checkpoints(mut self, on: bool) -> Self {
        self.full_frontier_checkpoints = on;
        self
    }

    fn validate(&self) -> Result<(), ScheduleError> {
        let bad = |msg: String| Err(ScheduleError::Internal(msg));
        if self.machines == 0 {
            return bad("service needs at least one machine".into());
        }
        if !(self.alpha.is_finite() && self.alpha > 1.0) {
            return bad(format!(
                "energy exponent must be finite and > 1, got {}",
                self.alpha
            ));
        }
        if self.shards == 0 {
            return bad("service needs at least one shard".into());
        }
        if self.max_batch == 0 {
            return bad("max_batch must be positive".into());
        }
        if self.checkpoint_chain == 0 {
            return bad("checkpoint_chain must retain at least one checkpoint".into());
        }
        if self.max_recovery_attempts == 0 {
            return bad("max_recovery_attempts must be positive".into());
        }
        if !(self.price_smoothing > 0.0 && self.price_smoothing <= 1.0) {
            return bad(format!(
                "price_smoothing must lie in (0, 1], got {}",
                self.price_smoothing
            ));
        }
        if self.coalesce_window.is_nan() || self.coalesce_window < 0.0 {
            return bad(format!(
                "coalesce_window must be nonnegative, got {}",
                self.coalesce_window
            ));
        }
        if self.stale_tolerance.is_nan() || self.stale_tolerance < 0.0 {
            return bad(format!(
                "stale_tolerance must be nonnegative, got {}",
                self.stale_tolerance
            ));
        }
        Ok(())
    }
}

/// Outcome of a successful [`TenantHandle::submit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Submission {
    /// The envelope entered the shard's arrival queue and will be fed to
    /// the scheduler.
    Queued {
        /// The shard that queued it.
        shard: usize,
    },
    /// Dual-price backpressure rejected the job at admission under the
    /// tenant's [`Reject`](BackpressurePolicy::Reject) policy; its value is
    /// booked as lost.  (This is an `Ok` outcome: the service did exactly
    /// what the tenant's policy asked for.)
    RejectedByPrice {
        /// The rolling dual price that triggered the rejection.
        price: f64,
    },
}

/// Statistics of one recovery ([`Daemon::recover_shard`]) or hand-off
/// ([`Daemon::handoff_shard`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryReport {
    /// Journal batches replayed on top of the restored checkpoint.
    pub replayed_batches: usize,
    /// Wall-clock seconds from the request to the fresh worker running.
    pub recovery_secs: f64,
    /// Checkpoints in the chain that failed to decode and were skipped
    /// (newest first) before one restored.
    pub chain_skipped: usize,
    /// Every checkpoint in the chain was undecodable, so the run was
    /// rebuilt from scratch and the *entire* journal replayed.
    pub cold_restart: bool,
}

/// What [`Daemon::watchdog_sweep`] found (and did) for one shard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WatchdogVerdict {
    /// The worker is alive (running, parked or draining) — nothing to do.
    Healthy,
    /// The worker was dead (injected crash, poisoned run, or a previous
    /// give-up) and was restored; `attempts` counts the consecutive
    /// automatic recoveries for this shard including this one.
    Recovered {
        /// The recovery statistics.
        report: RecoveryReport,
        /// Consecutive automatic recovery attempts, including this one.
        attempts: usize,
    },
    /// The worker was dead but the shard already exhausted
    /// [`ServeConfig::max_recovery_attempts`] consecutive recoveries; the
    /// shard is left down for the operator.
    GaveUp {
        /// Consecutive automatic recovery attempts already spent.
        attempts: usize,
    },
}

/// One batch as fed to the scheduler, journalled *before* the feed so a
/// recovering worker can replay it deterministically.
#[derive(Debug, Clone)]
struct LoggedBatch {
    feed_time: f64,
    envelopes: Vec<JobEnvelope>,
}

/// A captured shard state: the run's `StateBlob` wire image plus the
/// journal cursor it corresponds to.
#[derive(Debug, Clone)]
struct ShardCheckpoint {
    batches_done: usize,
    events_done: usize,
    jobs_done: usize,
    watermark: f64,
    price: f64,
    release_floor: f64,
    /// The segment-log cursor at capture time: recovery truncates the log
    /// here before replay (write-ahead discipline), and an O(active) blob
    /// stores the same cursor in place of its frontier.
    cursor: LogCursor,
    wire: Vec<u8>,
}

/// Everything a shard's worker writes: the durable batch log, the derived
/// per-event records, and the lifecycle outcome.
#[derive(Debug)]
struct ShardJournal {
    log: Vec<LoggedBatch>,
    events: Vec<ServedEvent>,
    jobs: Vec<Job>,
    price_trace: Vec<f64>,
    depth_samples: Vec<usize>,
    /// The shard's append-only realised-segment log: synced with the
    /// run's frontier after every fed batch (under this lock), the other
    /// half of every O(active) checkpoint in the chain.
    seglog: SegmentLog,
    /// The bounded checkpoint chain, oldest first, newest last.
    checkpoints: VecDeque<ShardCheckpoint>,
    checkpoints_taken: usize,
    handoffs: usize,
    handoff_secs: Vec<f64>,
    drain_secs: f64,
    finished: Option<Schedule>,
    failed: Option<ScheduleError>,
    crashed: bool,
}

impl ShardJournal {
    fn new(machines: usize) -> Self {
        Self {
            log: Vec::new(),
            events: Vec::new(),
            jobs: Vec::new(),
            price_trace: Vec::new(),
            depth_samples: Vec::new(),
            seglog: SegmentLog::new(machines),
            checkpoints: VecDeque::new(),
            checkpoints_taken: 0,
            handoffs: 0,
            handoff_secs: Vec::new(),
            drain_secs: 0.0,
            finished: None,
            failed: None,
            crashed: false,
        }
    }
}

/// Shared per-shard state: the queue, the published backpressure signals
/// and the journal.
#[derive(Debug)]
struct ShardShared {
    shard: usize,
    queue: ArrivalQueue<JobEnvelope>,
    /// Submissions currently inside `submit()` for this shard; a draining
    /// worker finishes only when this reaches zero, closing the race
    /// between a final push and the shutdown check.
    submitting: AtomicUsize,
    /// True maximum queue depth ever reached, bumped by producers at every
    /// successful push (`fetch_max`).  The journal's `depth_samples` are
    /// taken only at drain points, so a transient storm that builds and
    /// drains between two drains would otherwise under-report — this
    /// counter is the storm-proof bound E17's imbalance column needs.
    /// Relaxed: a monotone max carries no ordering obligations.
    peak_depth: AtomicUsize,
    /// The rolling dual price, published as f64 bits.
    price_bits: AtomicU64,
    /// The shard's feed watermark (last feed time), published as f64 bits.
    watermark_bits: AtomicU64,
    /// Crash injection: the worker exits (without checkpointing) at the
    /// first quiescent boundary with `batches_done >= crash_at`.
    crash_at: AtomicUsize,
    /// Fault injection: the worker journals the batch numbered
    /// `fail_feed_at`, then poisons the shard *instead of* feeding it —
    /// modelling a transient feed failure after the durable log write.
    /// Recovery replays the logged batch successfully, so the merged
    /// outcome is bit-identical to a fault-free run.  `usize::MAX`
    /// (the default) never fires; the hook is one relaxed-free load per
    /// batch when disabled.
    fail_feed_at: AtomicUsize,
    /// Bumped every time the worker parks at a quiescent boundary while
    /// the service is paused.  Deterministic drivers (the chaos engine)
    /// wait for a bump after pausing to know the worker holds no
    /// drained-but-unfed arrivals.
    idle_epoch: AtomicU64,
    /// Consecutive automatic recoveries by the watchdog; reset when a
    /// sweep finds the shard healthy.
    recovery_attempts: AtomicUsize,
    /// Hand-off request: the worker checkpoints at the next quiescent
    /// boundary and exits.
    handoff: AtomicBool,
    /// Raised when the shard's run was poisoned by an ingestion error (the
    /// worker exits, surfacing the error at shutdown).  Admission bounces
    /// new submissions instead of letting producers spin on a queue no
    /// worker will ever drain.
    failed: AtomicBool,
    /// The live worker thread, for unparking.
    worker: Mutex<Option<std::thread::Thread>>,
    journal: Mutex<ShardJournal>,
}

impl ShardShared {
    fn new(shard: usize, queue_capacity: usize, machines: usize) -> Self {
        Self {
            shard,
            queue: ArrivalQueue::with_capacity(queue_capacity),
            submitting: AtomicUsize::new(0),
            peak_depth: AtomicUsize::new(0),
            price_bits: AtomicU64::new(0.0_f64.to_bits()),
            watermark_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            crash_at: AtomicUsize::new(usize::MAX),
            fail_feed_at: AtomicUsize::new(usize::MAX),
            idle_epoch: AtomicU64::new(0),
            recovery_attempts: AtomicUsize::new(0),
            handoff: AtomicBool::new(false),
            failed: AtomicBool::new(false),
            worker: Mutex::new(None),
            journal: Mutex::new(ShardJournal::new(machines)),
        }
    }

    // Ordering contract for the published signals: the worker stores both
    // with `Release` after updating the journal under its mutex, and
    // admission reads them with `Acquire`.  Each signal is a single
    // `AtomicU64` of f64 bits, so a read is never torn — it is some value
    // the worker actually published — and the acquire edge makes the
    // batch that produced it (journal entries, watermark advance) visible
    // to the reader.
    fn price(&self) -> f64 {
        f64::from_bits(self.price_bits.load(Ordering::Acquire))
    }

    fn watermark(&self) -> f64 {
        f64::from_bits(self.watermark_bits.load(Ordering::Acquire))
    }

    fn unpark_worker(&self) {
        if let Some(t) = self.worker.lock().unwrap().as_ref() {
            t.unpark();
        }
    }
}

/// State shared between the daemon, the tenant handles and the workers.
#[derive(Debug)]
struct ServiceShared {
    config: ServeConfig,
    shutdown: AtomicBool,
    paused: AtomicBool,
    tenants: Vec<TenantState>,
    shards: Vec<Arc<ShardShared>>,
}

/// A tenant's submission capability.  Cloneable and sendable: a tenant may
/// submit from as many threads as it likes; the handle *is* the identity
/// (the envelope's `tenant` field is overwritten with the handle's).
#[derive(Debug, Clone)]
pub struct TenantHandle {
    inner: Arc<ServiceShared>,
    tenant: TenantId,
}

impl TenantHandle {
    /// The tenant this handle submits as.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The shard this tenant's submissions enter.
    pub fn shard(&self) -> usize {
        self.inner.tenants[self.tenant.index()].spec.shard
    }

    /// The feed watermark of this tenant's shard (the time of its last
    /// ingestion batch; `-inf` before the first).  Tenants producing from a
    /// replayed or simulated clock pace against this to keep their releases
    /// near the shard's virtual time — submissions whose deadlines fall
    /// behind it are rejected as expired.
    pub fn watermark(&self) -> f64 {
        self.inner.shards[self.shard()].watermark()
    }

    /// Submits an envelope through the admission gates, in order: shutdown,
    /// model-field validity, staleness and expiry against the shard
    /// watermark, the dual-price gate, the outstanding-jobs quota, and
    /// finally the bounded queue.  Returns where the submission ended up,
    /// or the typed gate that stopped it — never panics, never poisons the
    /// scheduler run.
    pub fn submit(&self, mut envelope: JobEnvelope) -> Result<Submission, IngressError> {
        envelope.tenant = self.tenant;
        let state = &self.inner.tenants[self.tenant.index()];
        let shard = &self.inner.shards[state.spec.shard];
        // Announce the in-flight submission before the shutdown check, so
        // a draining worker that sees the flag raised always waits for us.
        //
        // Ordering contract: both RMWs are `AcqRel` so the counter's
        // modification order carries synchronisation.  The increment's
        // acquire side pairs with the worker's probe (see the drain check
        // in `worker_loop`): if the probe read zero *after* shutdown was
        // observed, our increment comes later in the modification order
        // and its acquire edge makes the shutdown flag visible to the
        // `admit` call below, which then bounces.  The decrement's release
        // side publishes the queue push that `admit` performed, so a probe
        // that reads zero also observes every completed push.
        shard.submitting.fetch_add(1, Ordering::AcqRel);
        let result = self.admit(state, shard, envelope);
        shard.submitting.fetch_sub(1, Ordering::AcqRel);
        if matches!(result, Ok(Submission::Queued { .. })) {
            shard.unpark_worker();
        }
        result
    }

    fn admit(
        &self,
        state: &TenantState,
        shard: &ShardShared,
        envelope: JobEnvelope,
    ) -> Result<Submission, IngressError> {
        if self.inner.shutdown.load(Ordering::Acquire) || shard.failed.load(Ordering::Acquire) {
            return Err(IngressError::ShuttingDown);
        }
        state.submitted.incr();
        envelope.validate().inspect_err(|_| {
            state.rejected_invalid.incr();
        })?;
        let watermark = shard.watermark();
        let tolerance = self.inner.config.stale_tolerance;
        if envelope.release < watermark - tolerance {
            state.rejected_stale.incr();
            return Err(IngressError::Stale {
                tenant: self.tenant,
                tag: envelope.tag,
                release: envelope.release,
                watermark,
                tolerance,
            });
        }
        // Dead on arrival: the job would be fed no earlier than the
        // watermark, past its own deadline.  (A job can still *expire in
        // the queue* if the watermark overtakes it before feeding — the
        // worker then synthesises the rejection at feed time.)
        if envelope.deadline <= watermark {
            state.rejected_stale.incr();
            return Err(IngressError::Expired {
                tenant: self.tenant,
                tag: envelope.tag,
                deadline: envelope.deadline,
                watermark,
            });
        }
        let price = shard.price();
        let threshold = state.spec.price_ceiling.min(envelope.value);
        if price > threshold {
            return match state.spec.policy {
                BackpressurePolicy::Defer => {
                    state.deferred.incr();
                    Err(IngressError::Backpressure {
                        tenant: self.tenant,
                        price,
                        threshold,
                    })
                }
                BackpressurePolicy::Reject => {
                    state.rejected_by_price.incr();
                    state.add_lost_value(envelope.value);
                    Ok(Submission::RejectedByPrice { price })
                }
            };
        }
        // The gauge's atomic increment *reserves* the quota slot (it
        // returns the previous value), so concurrent submitters cannot
        // jointly overshoot; failed gates release the reservation.
        let outstanding = state.outstanding.incr();
        if outstanding >= state.spec.quota {
            state.outstanding.decr();
            state.quota_exceeded.incr();
            return Err(IngressError::QuotaExceeded {
                tenant: self.tenant,
                limit: state.spec.quota,
            });
        }
        if shard.queue.push(envelope).is_err() {
            state.outstanding.decr();
            state.queue_full.incr();
            return Err(IngressError::QueueFull {
                shard: state.spec.shard,
                capacity: shard.queue.capacity(),
            });
        }
        shard
            .peak_depth
            .fetch_max(shard.queue.len(), Ordering::Relaxed);
        Ok(Submission::Queued {
            shard: state.spec.shard,
        })
    }
}

/// The worker's feed cursor: how far the run has progressed, as journal
/// coordinates.
#[derive(Debug, Clone, Copy)]
struct FeedCursor {
    batches_done: usize,
    jobs_done: usize,
    price: f64,
    /// The largest release the run has been fed so far.  The online model
    /// requires nondecreasing releases (PD's partition refinement keys on
    /// them), but a multi-tenant queue interleaves producers' releases out
    /// of order — late live jobs are fed with their release clamped up to
    /// this floor (never past the feed time, so their windows stay open).
    release_floor: f64,
}

/// A worker's starting state: a run plus the cursor it is at.
struct WorkerSeed<R> {
    run: R,
    cursor: FeedCursor,
}

/// Splits one coalesced burst off the front of `pending`: the maximal run
/// of consecutive envelopes whose releases lie within `window` of the
/// first's — the same rule as `pss_sim::coalesce_arrivals`, applied to the
/// drained stream.  `window == 0` yields singletons.
fn split_burst(pending: &mut VecDeque<JobEnvelope>, window: f64) -> Vec<JobEnvelope> {
    let head = pending.pop_front().expect("split_burst on empty pending");
    let first = head.release;
    let mut burst = vec![head];
    if window > 0.0 {
        while pending.front().is_some_and(|e| e.release <= first + window) {
            burst.push(pending.pop_front().unwrap());
        }
    }
    burst
}

/// Feeds one journalled batch into the run and records its outcomes:
/// per-decision events, the EWMA price update, the price trace and the
/// published watermark.  Shared verbatim by the live worker path and the
/// recovery replay, which is what makes replay bit-identical.
///
/// A job whose deadline the batch's feed time has already overtaken
/// (admitted in time, then *expired in the queue* while the watermark ran
/// ahead) is never shown to the scheduler — the model forbids arrivals
/// past the deadline, and the algorithms treat them as contract
/// violations.  The service synthesises the rejection the model implies
/// (`Decision::reject(value)`, marked [`ServedEvent::expired`]) so the
/// boundary stays total and the run is never poisoned.  The guard depends
/// only on the journalled envelopes and feed time, so replay reproduces
/// it bit-for-bit.
fn feed_batch<R: OnlineScheduler>(
    run: &mut R,
    shard: &ShardShared,
    journal: &mut ShardJournal,
    cursor: &mut FeedCursor,
    smoothing: f64,
    batch: &LoggedBatch,
) -> Result<(), ScheduleError> {
    let base = cursor.jobs_done;
    let jobs: Vec<Job> = batch
        .envelopes
        .iter()
        .enumerate()
        .map(|(k, e)| {
            let mut job = e.job(JobId(base + k));
            if job.deadline > batch.feed_time {
                // Live job: clamp a late release up to the run's release
                // floor — the online model requires nondecreasing releases,
                // and a multi-tenant queue interleaves them out of order.
                // The floor never exceeds the feed time, so the clamped
                // window stays open; expired jobs (never fed) keep their
                // original release for the record.
                job.release = job.release.max(cursor.release_floor);
                cursor.release_floor = job.release;
            }
            job
        })
        .collect();
    let live: Vec<Job> = jobs
        .iter()
        .filter(|j| j.deadline > batch.feed_time)
        .cloned()
        .collect();
    let mut live_decisions = run.on_arrivals(&live, batch.feed_time)?.into_iter();
    let decisions: Vec<Decision> = batch
        .envelopes
        .iter()
        .zip(&jobs)
        .map(|(envelope, job)| {
            if job.deadline <= batch.feed_time {
                Decision::reject(envelope.value)
            } else {
                live_decisions
                    .next()
                    .expect("one decision per live job in the batch")
            }
        })
        .collect();
    // Every decision is a pricing event, folded through the shared
    // `fold_price` rule (same code path as the sharded simulator, so
    // replay, recovery and the drift oracle agree to the bit):
    // acceptances fold their marginal price λ_j symmetrically, while
    // rejections only ratchet the price *up* toward the lost value v_j —
    // a shard drowning in hopeless jobs raises its published price
    // instead of freezing it (rejection-only batches used to be skipped
    // entirely; a congested shard's price then never moved and
    // cheapest-price routing kept herding onto it — the E17 starvation
    // finding), yet a flood of below-price rejections cannot drag the
    // price down and turn the congested shard into the argmin.  A batch
    // with no decisions at all still leaves the price bit-unchanged and
    // never NaN: admission-level bounces (the ceiling-0 flood) produce
    // no decisions and must not perturb the signal.
    for ((envelope, job), decision) in batch.envelopes.iter().zip(&jobs).zip(&decisions) {
        let expired = job.deadline <= batch.feed_time;
        cursor.price = fold_price(cursor.price, smoothing, decision);
        journal.events.push(ServedEvent {
            shard: shard.shard,
            tenant: envelope.tenant,
            tag: envelope.tag,
            job: job.id,
            release: envelope.release,
            feed_time: batch.feed_time,
            batch: cursor.batches_done,
            accepted: decision.accepted,
            expired,
            dual: decision.dual,
        });
    }
    cursor.jobs_done += jobs.len();
    cursor.batches_done += 1;
    journal.jobs.extend(jobs);
    journal.price_trace.push(cursor.price);
    // The run's frontier just grew by this batch's committed segments;
    // mirror the delta into the shard's append-only segment log (one
    // checksummed record per batch).  Recovery replays through this same
    // path, so a restored shard rebuilds the identical log.
    journal.seglog.sync_from(run.frontier()).map_err(|e| {
        ScheduleError::Internal(format!(
            "segment log rejected the batch's frontier delta: {e}"
        ))
    })?;
    // `Release` publication: an admission thread that acquires either
    // signal also sees this batch's journal updates (see the contract on
    // `ShardShared::price`).  The watermark is stored after the price so a
    // tenant pacing on the watermark never sees a price older than it.
    shard
        .price_bits
        .store(cursor.price.to_bits(), Ordering::Release);
    shard
        .watermark_bits
        .store(batch.feed_time.to_bits(), Ordering::Release);
    Ok(())
}

/// Captures a checkpoint: the run's `StateBlob` wire image plus the
/// journal cursor, appended to the shard's bounded checkpoint chain
/// (oldest entries fall off once the chain exceeds `checkpoint_chain`
/// blobs).
///
/// By default the blob holds only live state plus a cursor into the
/// shard's segment log (`snapshot_live`) — O(active) bytes per capture —
/// and the log's record envelopes are compacted below the fresh cursor
/// (segment data is never dropped, so the older retained blobs still
/// reassemble).  Under [`ServeConfig::full_frontier_checkpoints`] the
/// legacy inline-frontier blob is captured instead.
fn capture_checkpoint<R: LogCheckpointable>(
    shard: &ShardShared,
    run: &R,
    cursor: &FeedCursor,
    config: &ServeConfig,
) -> Result<(), ScheduleError> {
    let mut journal = shard.journal.lock().unwrap();
    let wire = if config.full_frontier_checkpoints {
        run.snapshot().to_bytes()
    } else {
        run.snapshot_live(&mut journal.seglog)
            .map_err(|e| ScheduleError::Internal(format!("checkpoint capture failed: {e}")))?
            .to_bytes()
    };
    let log_cursor = journal.seglog.cursor();
    if !config.full_frontier_checkpoints {
        journal.seglog.compact(log_cursor);
    }
    let events_done = journal.events.len();
    journal.checkpoints_taken += 1;
    journal.checkpoints.push_back(ShardCheckpoint {
        batches_done: cursor.batches_done,
        events_done,
        jobs_done: cursor.jobs_done,
        watermark: shard.watermark(),
        price: cursor.price,
        release_floor: cursor.release_floor,
        cursor: log_cursor,
        wire,
    });
    while journal.checkpoints.len() > config.checkpoint_chain.max(1) {
        journal.checkpoints.pop_front();
    }
    Ok(())
}

fn spawn_worker<R>(
    shared: Arc<ServiceShared>,
    shard: Arc<ShardShared>,
    seed: WorkerSeed<R>,
) -> JoinHandle<()>
where
    R: OnlineScheduler + LogCheckpointable + Send + 'static,
{
    std::thread::Builder::new()
        .name(format!("pss-serve-{}", shard.shard))
        .spawn(move || worker_loop(shared, shard, seed))
        .expect("failed to spawn shard worker thread")
}

fn worker_loop<R: OnlineScheduler + LogCheckpointable>(
    shared: Arc<ServiceShared>,
    shard: Arc<ShardShared>,
    seed: WorkerSeed<R>,
) {
    *shard.worker.lock().unwrap() = Some(std::thread::current());
    let config = shared.config;
    let WorkerSeed {
        mut run,
        mut cursor,
    } = seed;
    let mut pending: VecDeque<JobEnvelope> = VecDeque::new();
    let mut drain_buf: Vec<JobEnvelope> = Vec::new();
    let mut drain_from: Option<Instant> = None;
    loop {
        if pending.is_empty() {
            // A quiescent batch boundary: no drained-but-unfed arrivals in
            // hand.  Lifecycle signals are honoured only here, so a dying
            // worker never loses acknowledged work.
            if cursor.batches_done >= shard.crash_at.load(Ordering::Acquire) {
                // Injected crash: die *without* checkpointing; the run's
                // in-memory state is lost with this thread.
                shard.journal.lock().unwrap().crashed = true;
                return;
            }
            // `AcqRel` swap: consume the request (release keeps the reset
            // ordered for a later requester; acquire pairs with the
            // control plane's `Release` store so its writes are visible).
            if shard.handoff.swap(false, Ordering::AcqRel) {
                if let Err(e) = capture_checkpoint(&shard, &run, &cursor, &config) {
                    let mut journal = shard.journal.lock().unwrap();
                    journal.failed = Some(e);
                    shard.failed.store(true, Ordering::Release);
                }
                return;
            }
            if shared.paused.load(Ordering::Acquire) && !shared.shutdown.load(Ordering::Acquire) {
                // Publish that we parked at a quiescent boundary while
                // paused: a deterministic driver that paused the service
                // and saw the epoch advance knows every lifecycle signal
                // above was checked with nothing drained-but-unfed in
                // hand.  `AcqRel` so the bump orders after the signal
                // checks for the driver's `Acquire` read.
                shard.idle_epoch.fetch_add(1, Ordering::AcqRel);
                std::thread::park_timeout(IDLE_PARK);
                continue;
            }
            if shared.shutdown.load(Ordering::Acquire) && drain_from.is_none() {
                drain_from = Some(Instant::now());
            }
            let depth = shard.queue.len();
            shard.peak_depth.fetch_max(depth, Ordering::Relaxed);
            drain_buf.clear();
            if shard.queue.drain_into(&mut drain_buf, config.max_batch) == 0 {
                // Drain-completion check.  Probe `submitting` FIRST, with
                // an `AcqRel` RMW (not a plain load): an RMW always reads
                // the latest value in the counter's modification order,
                // and its release side means any submitter whose increment
                // lands *after* this probe synchronises with it — having
                // already observed `shutdown` (which happened-before the
                // probe via our acquire load above), that submitter
                // bounces in `admit` and never pushes.  A probe of zero
                // also observes every completed push, because each
                // submitter's `AcqRel` decrement released its push into
                // the RMW chain the probe acquires.  Only then re-check
                // the queue: any push the probe admitted is now visible,
                // so an empty queue here really is the last word.  (The
                // previous plain-`Acquire` load could miss a submitter
                // that slipped between the drain and the check, losing its
                // final push — the model checker's shutdown model catches
                // exactly that interleaving.)
                if shared.shutdown.load(Ordering::Acquire)
                    && shard.submitting.fetch_add(0, Ordering::AcqRel) == 0
                    && shard.queue.is_empty()
                {
                    let started = drain_from.unwrap_or_else(Instant::now);
                    let result = run.finish();
                    let mut journal = shard.journal.lock().unwrap();
                    journal.drain_secs = started.elapsed().as_secs_f64();
                    match result {
                        Ok(schedule) => journal.finished = Some(schedule),
                        Err(e) => journal.failed = Some(e),
                    }
                    return;
                }
                std::thread::park_timeout(IDLE_PARK);
                continue;
            }
            for envelope in &drain_buf {
                shared.tenants[envelope.tenant.index()].outstanding.decr();
            }
            shard.journal.lock().unwrap().depth_samples.push(depth);
            pending.extend(drain_buf.drain(..));
        }
        let envelopes = split_burst(&mut pending, config.coalesce_window);
        let release_max = envelopes
            .iter()
            .map(|e| e.release)
            .fold(f64::NEG_INFINITY, f64::max);
        let batch = LoggedBatch {
            // Late (stale-admitted) jobs are fed at the watermark so the
            // nondecreasing-arrival contract always holds.
            feed_time: shard.watermark().max(release_max),
            envelopes,
        };
        {
            let mut journal = shard.journal.lock().unwrap();
            journal.log.push(batch.clone());
            // Injected transient feed fault: the batch is durably logged
            // but the feed "fails" — the run is poisoned exactly as a real
            // ingestion error would, and recovery replays the logged batch
            // (successfully) for a bit-identical merged outcome.
            if cursor.batches_done >= shard.fail_feed_at.load(Ordering::Acquire) {
                shard.fail_feed_at.store(usize::MAX, Ordering::Release);
                journal.failed = Some(ScheduleError::Internal(
                    "injected transient feed fault".into(),
                ));
                shard.failed.store(true, Ordering::Release);
                return;
            }
            if let Err(e) = feed_batch(
                &mut run,
                &shard,
                &mut journal,
                &mut cursor,
                config.price_smoothing,
                &batch,
            ) {
                // An ingestion error poisons the run; surface it at
                // shutdown instead of panicking the worker, and stop
                // admitting so producers don't spin on a dead queue.
                journal.failed = Some(e);
                shard.failed.store(true, Ordering::Release);
                return;
            }
        }
        if config.checkpoint_every > 0 && cursor.batches_done % config.checkpoint_every == 0 {
            if let Err(e) = capture_checkpoint(&shard, &run, &cursor, &config) {
                // A failed capture poisons the shard like a feed error:
                // surface it at shutdown, stop admitting, let the
                // watchdog recover from the journal.
                let mut journal = shard.journal.lock().unwrap();
                journal.failed = Some(e);
                shard.failed.store(true, Ordering::Release);
                return;
            }
        }
    }
}

/// A running multi-tenant ingestion service over online algorithm `A`.
///
/// Created by [`Daemon::spawn`]; submissions flow through the
/// [`TenantHandle`]s it returns.  The daemon object itself is the *control
/// plane*: lifecycle operations (crash injection, recovery, hand-off,
/// shutdown) and introspection (prices, queue depths).
pub struct Daemon<A: OnlineAlgorithm>
where
    A::Run: LogCheckpointable + Send + 'static,
{
    algorithm: A,
    inner: Arc<ServiceShared>,
    workers: Vec<Option<JoinHandle<()>>>,
}

impl<A> Daemon<A>
where
    A: OnlineAlgorithm,
    A::Run: LogCheckpointable + Send + 'static,
{
    /// Starts the service: one scheduler run and one worker thread per
    /// shard, plus one [`TenantHandle`] per registered tenant (in
    /// registration order).
    pub fn spawn(
        algorithm: A,
        config: ServeConfig,
        tenants: Vec<TenantSpec>,
    ) -> Result<(Self, Vec<TenantHandle>), ScheduleError> {
        config.validate()?;
        for (i, spec) in tenants.iter().enumerate() {
            if spec.shard >= config.shards {
                return Err(ScheduleError::Internal(format!(
                    "tenant {i} ({}) is placed on shard {} but the service has {} shard(s)",
                    spec.name, spec.shard, config.shards
                )));
            }
        }
        let inner = Arc::new(ServiceShared {
            config,
            shutdown: AtomicBool::new(false),
            paused: AtomicBool::new(config.start_paused),
            tenants: tenants.into_iter().map(TenantState::new).collect(),
            shards: (0..config.shards)
                .map(|s| Arc::new(ShardShared::new(s, config.queue_capacity, config.machines)))
                .collect(),
        });
        let mut workers = Vec::with_capacity(config.shards);
        for shard in &inner.shards {
            let run = algorithm.start(config.machines, config.alpha)?;
            let cursor = FeedCursor {
                batches_done: 0,
                jobs_done: 0,
                price: 0.0,
                release_floor: f64::NEG_INFINITY,
            };
            // An initial checkpoint makes recovery possible from batch 0.
            capture_checkpoint(shard, &run, &cursor, &config)?;
            let seed = WorkerSeed { run, cursor };
            workers.push(Some(spawn_worker(
                Arc::clone(&inner),
                Arc::clone(shard),
                seed,
            )));
        }
        let handles = (0..inner.tenants.len())
            .map(|i| TenantHandle {
                inner: Arc::clone(&inner),
                tenant: TenantId(i as u32),
            })
            .collect();
        Ok((
            Self {
                algorithm,
                inner,
                workers,
            },
            handles,
        ))
    }

    /// The algorithm's display name.
    pub fn algorithm_name(&self) -> String {
        self.algorithm.algorithm_name()
    }

    /// The service configuration.
    pub fn config(&self) -> ServeConfig {
        self.inner.config
    }

    /// A fresh handle for a registered tenant, or
    /// [`IngressError::UnknownTenant`] — the error-path twin of the handles
    /// [`spawn`](Self::spawn) returns.
    pub fn handle(&self, tenant: TenantId) -> Result<TenantHandle, IngressError> {
        if tenant.index() >= self.inner.tenants.len() {
            return Err(IngressError::UnknownTenant(tenant));
        }
        Ok(TenantHandle {
            inner: Arc::clone(&self.inner),
            tenant,
        })
    }

    /// Unpauses a service spawned with `start_paused` (or re-paused by
    /// [`pause`](Self::pause)).
    pub fn resume(&self) {
        self.inner.paused.store(false, Ordering::Release);
        for shard in &self.inner.shards {
            shard.unpark_worker();
        }
    }

    /// Pauses ingestion: workers park at their next quiescent boundary and
    /// queues fill.  Together with [`shard_idle_epoch`](Self::shard_idle_epoch)
    /// this lets a deterministic driver (the chaos engine) stage a wave of
    /// submissions while no worker drains, fixing the drain chunking —
    /// and therefore the batch structure — independent of producer timing.
    pub fn pause(&self) {
        self.inner.paused.store(true, Ordering::Release);
    }

    /// The shard's idle epoch: bumped every time its worker parks at a
    /// quiescent boundary while the service is paused.  After
    /// [`pause`](Self::pause), an epoch advance proves the worker is parked
    /// with nothing drained-but-unfed in hand.
    pub fn shard_idle_epoch(&self, shard: usize) -> u64 {
        // `Acquire` pairs with the worker's `AcqRel` bump.
        self.inner.shards[shard].idle_epoch.load(Ordering::Acquire)
    }

    /// How many decision events the shard has journalled so far.  A driver
    /// that knows how many envelopes it queued polls this to detect that
    /// the worker has fed them all.
    pub fn shard_event_count(&self, shard: usize) -> usize {
        self.inner.shards[shard]
            .journal
            .lock()
            .unwrap()
            .events
            .len()
    }

    /// The shard's current rolling dual price (the backpressure signal).
    pub fn shard_price(&self, shard: usize) -> f64 {
        self.inner.shards[shard].price()
    }

    /// The shard's segment-log end cursor (realised segments) and live
    /// record-envelope count — introspection for the checkpoint drills
    /// and E18 (compaction keeps the envelope count O(retained chain)).
    pub fn shard_log_stats(&self, shard: usize) -> (u64, usize) {
        let journal = self.inner.shards[shard].journal.lock().unwrap();
        (
            journal.seglog.cursor().segments(),
            journal.seglog.record_count(),
        )
    }

    /// Wire sizes of the shard's retained checkpoint blobs, oldest first —
    /// the O(active)-vs-O(events) measurement E18 and the chaos drills
    /// read.
    pub fn shard_checkpoint_sizes(&self, shard: usize) -> Vec<usize> {
        let journal = self.inner.shards[shard].journal.lock().unwrap();
        journal.checkpoints.iter().map(|c| c.wire.len()).collect()
    }

    /// A snapshot of the shard's arrival-queue depth.
    pub fn queue_depth(&self, shard: usize) -> usize {
        self.inner.shards[shard].queue.len()
    }

    /// The shard's feed watermark (the time of its last ingestion batch;
    /// `-inf` before the first).  Staleness is judged against this.
    pub fn shard_watermark(&self, shard: usize) -> f64 {
        self.inner.shards[shard].watermark()
    }

    /// Injects a crash: the shard's worker exits *without* checkpointing at
    /// the first quiescent boundary where it has fed at least `at_batches`
    /// batches, losing all in-memory run state.  Blocks until the worker is
    /// dead.  The shard's queue keeps accepting submissions; call
    /// [`recover_shard`](Self::recover_shard) to resume ingestion.
    ///
    /// The worker only reaches boundaries while it has arrivals to feed or
    /// polls an empty queue, so `at_batches` must be at most the batches
    /// the pending workload produces, or this blocks until more arrive.
    pub fn crash_shard(&mut self, shard: usize, at_batches: usize) -> Result<(), ScheduleError> {
        let sh = &self.inner.shards[shard];
        sh.crash_at.store(at_batches, Ordering::Release);
        sh.unpark_worker();
        let handle = self.workers[shard]
            .take()
            .ok_or_else(|| ScheduleError::Internal(format!("shard {shard} has no live worker")))?;
        handle
            .join()
            .map_err(|_| ScheduleError::Internal(format!("shard {shard} worker panicked")))?;
        sh.crash_at.store(usize::MAX, Ordering::Release);
        debug_assert!(sh.journal.lock().unwrap().crashed);
        Ok(())
    }

    /// Restores a dead shard on a fresh worker thread: reconstructs the run
    /// from the newest checkpoint in the chain whose `StateBlob` wire image
    /// still decodes (skipping corrupted blobs towards older ones), rewinds
    /// the derived records to that checkpoint, replays the journalled
    /// batches after it (bit-identically — same feed times, same dense
    /// ids), and resumes ingestion where the dead worker left off.  If
    /// *every* blob in the chain is corrupt the run is rebuilt from scratch
    /// and the whole journal replayed (`cold_restart`) — the journal, not
    /// the checkpoint, is the source of truth; checkpoints only shorten
    /// replay.  A poisoned shard (`failed` raised by a feed fault) is
    /// un-poisoned: the pending error is dropped and admission reopens.
    pub fn recover_shard(&mut self, shard: usize) -> Result<RecoveryReport, ScheduleError> {
        if self.workers[shard].is_some() {
            return Err(ScheduleError::Internal(format!(
                "shard {shard} still has a live worker; crash or hand it off first"
            )));
        }
        let started = Instant::now();
        let sh = Arc::clone(&self.inner.shards[shard]);
        let mut journal = sh.journal.lock().unwrap();
        // Newest blob that decodes wins; count what we had to skip.  An
        // O(active) blob decodes *against the log*: its frontier cursor
        // reassembles from the journal's segment log (compaction never
        // discards the segments an older retained blob needs).
        let full_frontier = self.inner.config.full_frontier_checkpoints;
        let mut chain_skipped = 0;
        let mut restored: Option<(A::Run, ShardCheckpoint)> = None;
        for ckpt in journal.checkpoints.iter().rev() {
            let decoded = StateBlob::from_bytes(&ckpt.wire).and_then(|blob| {
                if full_frontier {
                    A::Run::restore(&blob)
                } else {
                    A::Run::restore_with_log(&blob, &journal.seglog)
                }
            });
            match decoded {
                Ok(run) => {
                    restored = Some((run, ckpt.clone()));
                    break;
                }
                Err(_) => chain_skipped += 1,
            }
        }
        let cold_restart = restored.is_none();
        let (mut run, mut cursor) = match restored {
            Some((run, ckpt)) => {
                journal.events.truncate(ckpt.events_done);
                journal.jobs.truncate(ckpt.jobs_done);
                journal.price_trace.truncate(ckpt.batches_done);
                // Write-ahead discipline: drop log segments at or beyond
                // the restored blob's cursor *before* replay — replay
                // re-commits them through the run itself (`feed_batch`
                // re-syncs the log), so skipping the truncation would
                // duplicate them.
                journal.seglog.truncate(ckpt.cursor).map_err(|e| {
                    ScheduleError::Internal(format!("segment log rewind failed: {e}"))
                })?;
                sh.price_bits.store(ckpt.price.to_bits(), Ordering::Release);
                sh.watermark_bits
                    .store(ckpt.watermark.to_bits(), Ordering::Release);
                let cursor = FeedCursor {
                    batches_done: ckpt.batches_done,
                    jobs_done: ckpt.jobs_done,
                    price: ckpt.price,
                    release_floor: ckpt.release_floor,
                };
                (run, cursor)
            }
            None => {
                let run = self
                    .algorithm
                    .start(self.inner.config.machines, self.inner.config.alpha)?;
                journal.events.clear();
                journal.jobs.clear();
                journal.price_trace.clear();
                // The full journal replays from scratch, so the log
                // restarts empty and is rebuilt batch by batch.
                journal.seglog = SegmentLog::new(self.inner.config.machines);
                sh.price_bits.store(0.0_f64.to_bits(), Ordering::Release);
                sh.watermark_bits
                    .store(f64::NEG_INFINITY.to_bits(), Ordering::Release);
                let cursor = FeedCursor {
                    batches_done: 0,
                    jobs_done: 0,
                    price: 0.0,
                    release_floor: f64::NEG_INFINITY,
                };
                (run, cursor)
            }
        };
        journal.crashed = false;
        journal.failed = None;
        sh.failed.store(false, Ordering::Release);
        let delta: Vec<LoggedBatch> = journal.log[cursor.batches_done..].to_vec();
        for batch in &delta {
            feed_batch(
                &mut run,
                &sh,
                &mut journal,
                &mut cursor,
                self.inner.config.price_smoothing,
                batch,
            )
            .map_err(|e| {
                ScheduleError::Internal(format!("journal replay rejected a logged batch: {e}"))
            })?;
        }
        drop(journal);
        let seed = WorkerSeed { run, cursor };
        self.workers[shard] = Some(spawn_worker(Arc::clone(&self.inner), sh, seed));
        Ok(RecoveryReport {
            replayed_batches: delta.len(),
            recovery_secs: started.elapsed().as_secs_f64(),
            chain_skipped,
            cold_restart,
        })
    }

    /// Sweeps every shard for dead workers and auto-recovers them with
    /// capped attempts — the supervision loop a chaos run (or an operator
    /// timer) drives.  A shard whose worker thread has exited outside
    /// shutdown — an injected crash, a poisoned run (feed fault), or a
    /// previous give-up — is joined and restored via
    /// [`recover_shard`](Self::recover_shard), up to
    /// [`ServeConfig::max_recovery_attempts`] *consecutive* recoveries;
    /// past the cap the verdict is [`WatchdogVerdict::GaveUp`] and the
    /// shard stays down.  A healthy shard resets its attempt counter.
    /// Returns one verdict per shard, in shard order.
    pub fn watchdog_sweep(&mut self) -> Result<Vec<WatchdogVerdict>, ScheduleError> {
        let mut verdicts = Vec::with_capacity(self.inner.shards.len());
        for shard in 0..self.inner.shards.len() {
            let sh = &self.inner.shards[shard];
            let finished = self.workers[shard]
                .as_ref()
                .is_some_and(|handle| handle.is_finished());
            let dead = if finished {
                // Reap the exited thread before restoring the shard.
                let handle = self.workers[shard]
                    .take()
                    .expect("finished implies a live handle");
                handle.join().map_err(|_| {
                    ScheduleError::Internal(format!("shard {shard} worker panicked"))
                })?;
                true
            } else {
                self.workers[shard].is_none()
            };
            if !dead {
                // Store (not RMW): the watchdog is the only writer.
                sh.recovery_attempts.store(0, Ordering::Release);
                verdicts.push(WatchdogVerdict::Healthy);
                continue;
            }
            let spent = sh.recovery_attempts.load(Ordering::Acquire);
            if spent >= self.inner.config.max_recovery_attempts {
                verdicts.push(WatchdogVerdict::GaveUp { attempts: spent });
                continue;
            }
            sh.recovery_attempts.store(spent + 1, Ordering::Release);
            let report = self.recover_shard(shard)?;
            verdicts.push(WatchdogVerdict::Recovered {
                report,
                attempts: spent + 1,
            });
        }
        Ok(verdicts)
    }

    /// Corrupts a stored checkpoint blob in place (a chaos-engine hook):
    /// flips one bit of the wire image of the checkpoint `newest_offset`
    /// back from the newest in the shard's chain (`0` = the newest).  The
    /// checksummed container makes any flipped bit decode to an error at
    /// recovery, exercising the chain fallback.  Errors if the chain has
    /// no such entry.  Zero cost when never called.
    pub fn corrupt_checkpoint(
        &self,
        shard: usize,
        newest_offset: usize,
        bit: usize,
    ) -> Result<(), ScheduleError> {
        let mut journal = self.inner.shards[shard].journal.lock().unwrap();
        let len = journal.checkpoints.len();
        let slot = len
            .checked_sub(1 + newest_offset)
            .ok_or_else(|| {
                ScheduleError::Internal(format!(
                    "shard {shard} chain holds {len} checkpoint(s); cannot corrupt offset {newest_offset}"
                ))
            })?;
        let wire = &mut journal.checkpoints[slot].wire;
        if wire.is_empty() {
            return Err(ScheduleError::Internal(format!(
                "shard {shard} checkpoint {slot} has an empty wire image"
            )));
        }
        let bit = bit % (wire.len() * 8);
        wire[bit / 8] ^= 1 << (bit % 8);
        Ok(())
    }

    /// Arms the transient-feed-fault injection hook (a chaos-engine hook):
    /// the shard's worker will durably journal batch number `at_batches`
    /// (0-based) and then poison the run instead of feeding it, exactly as
    /// a real ingestion error would — the worker exits, admission bounces,
    /// and [`watchdog_sweep`](Self::watchdog_sweep) (or
    /// [`recover_shard`](Self::recover_shard) after joining) un-poisons the
    /// shard by replaying the log.  One-shot: the hook disarms when it
    /// fires.  Zero cost when never armed (one `Acquire` load per batch).
    pub fn inject_feed_fault(&self, shard: usize, at_batches: usize) {
        let sh = &self.inner.shards[shard];
        sh.fail_feed_at.store(at_batches, Ordering::Release);
        sh.unpark_worker();
    }

    /// Gracefully migrates a shard to a fresh worker thread: the old worker
    /// checkpoints at its next quiescent boundary and exits, the new one
    /// restores from the blob (empty replay delta) and continues —
    /// bit-identically, as if the hand-off never happened.  Returns the
    /// recovery statistics; the hand-off latency is also recorded in the
    /// service report.
    pub fn handoff_shard(&mut self, shard: usize) -> Result<RecoveryReport, ScheduleError> {
        let started = Instant::now();
        let sh = &self.inner.shards[shard];
        sh.handoff.store(true, Ordering::Release);
        sh.unpark_worker();
        let handle = self.workers[shard]
            .take()
            .ok_or_else(|| ScheduleError::Internal(format!("shard {shard} has no live worker")))?;
        handle
            .join()
            .map_err(|_| ScheduleError::Internal(format!("shard {shard} worker panicked")))?;
        // The hand-off ships a `(log tail, blob)` pair across the worker
        // boundary: the departing worker's final checkpoint blob plus the
        // serialised segment-log tail, re-absorbed into a *fresh* log on
        // the receiving side.  Rebuilding the journal's log from the
        // shipped bytes — and only those bytes — proves the pair is
        // self-contained before `recover_shard` restores from it.
        // Skipped under the legacy full-frontier toggle, whose blobs
        // carry their frontier inline.
        if !self.inner.config.full_frontier_checkpoints {
            let mut journal = self.inner.shards[shard].journal.lock().unwrap();
            let tail = journal.seglog.encode_tail(LogCursor(0)).map_err(|e| {
                ScheduleError::Internal(format!("hand-off log-tail encode failed: {e}"))
            })?;
            let mut moved = SegmentLog::new(self.inner.config.machines);
            moved.absorb_tail(&tail).map_err(|e| {
                ScheduleError::Internal(format!("hand-off log-tail absorb failed: {e}"))
            })?;
            journal.seglog = moved;
        }
        let report = self.recover_shard(shard)?;
        let secs = started.elapsed().as_secs_f64();
        let mut journal = self.inner.shards[shard].journal.lock().unwrap();
        journal.handoffs += 1;
        journal.handoff_secs.push(secs);
        Ok(report)
    }

    /// Drains and stops the service: no new submissions are admitted,
    /// every worker feeds its queue dry, finishes its run, and the full
    /// [`ServiceReport`] is assembled — per-shard schedules, decision
    /// events, price traces, per-tenant accounting and lifecycle latencies.
    pub fn shutdown(mut self) -> Result<ServiceReport, ScheduleError> {
        self.inner.shutdown.store(true, Ordering::Release);
        for shard in &self.inner.shards {
            shard.unpark_worker();
        }
        for (s, worker) in self.workers.iter_mut().enumerate() {
            let handle = worker.take().ok_or_else(|| {
                ScheduleError::Internal(format!(
                    "shard {s} has no live worker at shutdown (crashed and never recovered?)"
                ))
            })?;
            handle
                .join()
                .map_err(|_| ScheduleError::Internal(format!("shard {s} worker panicked")))?;
        }
        let tenant_count = self.inner.tenants.len();
        let mut accepted = vec![0u64; tenant_count];
        let mut rejected = vec![0u64; tenant_count];
        let mut shards = Vec::with_capacity(self.inner.shards.len());
        let mut drain = DrainSummary::default();
        for sh in &self.inner.shards {
            let mut journal = sh.journal.lock().unwrap();
            if let Some(e) = journal.failed.take() {
                return Err(e);
            }
            let schedule = journal.finished.take().ok_or_else(|| {
                ScheduleError::Internal(format!("shard {} did not finish its run", sh.shard))
            })?;
            for event in &journal.events {
                if event.accepted {
                    accepted[event.tenant.index()] += 1;
                } else {
                    rejected[event.tenant.index()] += 1;
                }
            }
            drain.drain_secs.push(journal.drain_secs);
            drain
                .handoff_secs
                .extend(journal.handoff_secs.iter().copied());
            shards.push(ShardReport {
                shard: sh.shard,
                jobs: std::mem::take(&mut journal.jobs),
                events: std::mem::take(&mut journal.events),
                batches: journal.log.len(),
                schedule,
                price_trace: std::mem::take(&mut journal.price_trace),
                final_price: sh.price(),
                depth_samples: std::mem::take(&mut journal.depth_samples),
                peak_queue_depth: sh.peak_depth.load(Ordering::Relaxed),
                checkpoints: journal.checkpoints_taken,
                handoffs: journal.handoffs,
                drain_secs: journal.drain_secs,
            });
        }
        let tenants = self
            .inner
            .tenants
            .iter()
            .enumerate()
            .map(|(i, state)| state.summary(accepted[i], rejected[i]))
            .collect();
        Ok(ServiceReport {
            algorithm: self.algorithm.algorithm_name(),
            machines: self.inner.config.machines,
            alpha: self.inner.config.alpha,
            shards,
            tenants,
            drain,
        })
    }
}

impl<A: OnlineAlgorithm> Drop for Daemon<A>
where
    A::Run: LogCheckpointable + Send + 'static,
{
    fn drop(&mut self) {
        // A dropped daemon releases its workers: raise the drain flag so
        // parked threads exit instead of leaking.  (Orderly users call
        // `shutdown`, which joins them and collects the report.)
        self.inner.shutdown.store(true, Ordering::Release);
        for shard in &self.inner.shards {
            shard.unpark_worker();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_rejects_nonsense() {
        assert!(ServeConfig::default().validate().is_ok());
        for broken in [
            ServeConfig {
                machines: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                alpha: 1.0,
                ..ServeConfig::default()
            },
            ServeConfig {
                shards: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                max_batch: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                price_smoothing: 0.0,
                ..ServeConfig::default()
            },
            ServeConfig {
                price_smoothing: 1.5,
                ..ServeConfig::default()
            },
            ServeConfig {
                coalesce_window: -1.0,
                ..ServeConfig::default()
            },
            ServeConfig {
                stale_tolerance: f64::NAN,
                ..ServeConfig::default()
            },
        ] {
            assert!(broken.validate().is_err(), "accepted {broken:?}");
        }
    }

    #[test]
    fn split_burst_mirrors_the_coalescing_rule() {
        let env = |release: f64| JobEnvelope::new(TenantId(0), 0, release, release + 1.0, 0.1, 1.0);
        let mut pending: VecDeque<JobEnvelope> =
            [0.0, 0.3, 0.9, 1.0, 5.0].into_iter().map(env).collect();
        // Window 0: singletons, even for equal releases.
        let burst = split_burst(&mut pending, 0.0);
        assert_eq!(burst.len(), 1);
        // Window 1.0 from the *first* release (0.3): 0.9 and 1.0 join.
        let burst = split_burst(&mut pending, 1.0);
        assert_eq!(burst.len(), 3);
        assert_eq!(burst[0].release, 0.3);
        assert_eq!(burst[2].release, 1.0);
        let burst = split_burst(&mut pending, 1.0);
        assert_eq!(burst.len(), 1);
        assert_eq!(burst[0].release, 5.0);
        assert!(pending.is_empty());
    }
}
