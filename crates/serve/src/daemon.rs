//! The ingestion daemon: sharded worker threads draining lock-free arrival
//! queues into long-running [`OnlineScheduler`] runs, with dual-price
//! backpressure at admission and a checkpointed crash / hand-off / drain
//! lifecycle.
//!
//! # Architecture
//!
//! ```text
//! TenantHandle ──submit()──▶ admission gates ──▶ ArrivalQueue ─┐  (shard 0)
//! TenantHandle ──submit()──▶ (validate, stale,                 ├─▶ worker ─▶ A::Run
//!    ...                      quota, dual price)               │   thread
//! TenantHandle ──────────────────────────────▶ ArrivalQueue ───┘  (shard 1) ...
//! ```
//!
//! Each shard owns one scheduler run and one worker thread.  The worker
//! drains its queue in bounded chunks, splits the chunk into *bursts* with
//! the same maximal-run rule as `pss_sim::coalesce_arrivals` (releases
//! within `coalesce_window` of the burst's first), and feeds each burst
//! through one [`OnlineScheduler::on_arrivals`] call — so a b-job burst
//! costs one replan instead of b, automatically, exactly when load is high
//! enough for the queue to hold a backlog.  Dense [`JobId`]s are assigned
//! in feed order, making each shard's fed stream a valid standalone
//! instance.
//!
//! # Backpressure
//!
//! The duals the scheduler emits (λ_j on acceptance, the lost value v_j on
//! rejection) are folded into a per-shard rolling EWMA — the *price*.
//! Admission compares the price against `min(tenant price ceiling, job
//! value)`: a submission whose declared value cannot cover the current
//! marginal price is deferred (retryable) or rejected at the boundary,
//! per the tenant's [`BackpressurePolicy`],
//! before it ever loads the scheduler.  Ahead of the price gate sit the
//! cheaper gates: model-field validation, the staleness window, the
//! tenant's outstanding-jobs quota and the bounded queue itself.
//!
//! # Lifecycle and determinism
//!
//! Workers act on lifecycle signals (crash injection, hand-off, shutdown)
//! only at *quiescent batch boundaries* — with no drained-but-unfed
//! arrivals in hand — so a dying worker never loses work it acknowledged.
//! Every fed batch is first appended to a durable in-memory journal; the
//! worker checkpoints its run every `checkpoint_every` batches as a
//! `StateBlob` wire image.  Recovery restores the run from the last blob,
//! rewinds the derived records to the checkpoint, and replays the journal
//! delta — reproducing the pre-crash decisions bit-for-bit, because every
//! run's restore is bit-identical and the journal fixes feed times and id
//! assignment.  A hand-off is the graceful special case: checkpoint at the
//! boundary, exit, restore on a fresh thread with an empty delta.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

// All shared-state atomics go through the `pss_check` facade: identical
// `std` re-exports in normal builds, model-checked replacements under
// `--cfg pss_model_check`.  This file and `queue.rs` are the only places
// outside the facade allowed to spell `Ordering::` (enforced by
// `pss-lint`); every use below carries its ordering contract in a
// comment.
use pss_check::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use pss_metrics::DrainSummary;
use pss_types::{
    Checkpointable, Decision, IngressError, Job, JobEnvelope, JobId, OnlineAlgorithm,
    OnlineScheduler, Schedule, ScheduleError, StateBlob, TenantId,
};

use crate::queue::ArrivalQueue;
use crate::report::{ServedEvent, ServiceReport, ShardReport};
use crate::tenant::{BackpressurePolicy, TenantSpec, TenantState};

/// How long an idle worker parks between queue polls.  Bounded parking
/// (rather than unbounded park/unpark handshakes) keeps the loop correct
/// even if an unpark races worker startup.
const IDLE_PARK: Duration = Duration::from_micros(100);

/// Static configuration of a service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Machines per shard run.
    pub machines: usize,
    /// Energy exponent α > 1.
    pub alpha: f64,
    /// Number of shards (independent queues, workers and scheduler runs).
    pub shards: usize,
    /// Capacity of each shard's arrival queue (rounded up to a power of
    /// two).  A full queue is the outermost backpressure layer.
    pub queue_capacity: usize,
    /// Burst-coalescing window: consecutive drained arrivals whose releases
    /// lie within this window of a burst's first are fed as one batch.
    /// `0.0` feeds every arrival individually.
    pub coalesce_window: f64,
    /// Most arrivals a worker drains from its queue per chunk.
    pub max_batch: usize,
    /// Checkpoint the run every this many ingestion batches (`0` keeps
    /// only the initial checkpoint).
    pub checkpoint_every: usize,
    /// EWMA weight β ∈ (0, 1] of the rolling dual price:
    /// `price ← (1-β)·price + β·dual` per decision.
    pub price_smoothing: f64,
    /// How far a submission's release may lie behind the shard's feed
    /// watermark and still be admitted; beyond it the submission is
    /// rejected as stale.  `f64::INFINITY` (the default) never rejects on
    /// lateness alone — late jobs are fed at the watermark.  Independent
    /// of the tolerance, a job whose *deadline* the watermark has already
    /// passed is rejected as expired (dead on arrival), and one whose
    /// deadline the watermark overtakes while it waits in the queue is
    /// rejected at feed time without being shown to the scheduler.
    pub stale_tolerance: f64,
    /// Start with ingestion paused (workers park, queues fill).  Used by
    /// deterministic tests to control batching; [`Daemon::resume`] unpauses.
    pub start_paused: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            machines: 1,
            alpha: 2.0,
            shards: 1,
            queue_capacity: 1024,
            coalesce_window: 0.0,
            max_batch: 256,
            checkpoint_every: 64,
            price_smoothing: 0.1,
            stale_tolerance: f64::INFINITY,
            start_paused: false,
        }
    }
}

impl ServeConfig {
    fn validate(&self) -> Result<(), ScheduleError> {
        let bad = |msg: String| Err(ScheduleError::Internal(msg));
        if self.machines == 0 {
            return bad("service needs at least one machine".into());
        }
        if !(self.alpha.is_finite() && self.alpha > 1.0) {
            return bad(format!(
                "energy exponent must be finite and > 1, got {}",
                self.alpha
            ));
        }
        if self.shards == 0 {
            return bad("service needs at least one shard".into());
        }
        if self.max_batch == 0 {
            return bad("max_batch must be positive".into());
        }
        if !(self.price_smoothing > 0.0 && self.price_smoothing <= 1.0) {
            return bad(format!(
                "price_smoothing must lie in (0, 1], got {}",
                self.price_smoothing
            ));
        }
        if self.coalesce_window.is_nan() || self.coalesce_window < 0.0 {
            return bad(format!(
                "coalesce_window must be nonnegative, got {}",
                self.coalesce_window
            ));
        }
        if self.stale_tolerance.is_nan() || self.stale_tolerance < 0.0 {
            return bad(format!(
                "stale_tolerance must be nonnegative, got {}",
                self.stale_tolerance
            ));
        }
        Ok(())
    }
}

/// Outcome of a successful [`TenantHandle::submit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Submission {
    /// The envelope entered the shard's arrival queue and will be fed to
    /// the scheduler.
    Queued {
        /// The shard that queued it.
        shard: usize,
    },
    /// Dual-price backpressure rejected the job at admission under the
    /// tenant's [`Reject`](BackpressurePolicy::Reject) policy; its value is
    /// booked as lost.  (This is an `Ok` outcome: the service did exactly
    /// what the tenant's policy asked for.)
    RejectedByPrice {
        /// The rolling dual price that triggered the rejection.
        price: f64,
    },
}

/// Statistics of one recovery ([`Daemon::recover_shard`]) or hand-off
/// ([`Daemon::handoff_shard`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryReport {
    /// Journal batches replayed on top of the restored checkpoint.
    pub replayed_batches: usize,
    /// Wall-clock seconds from the request to the fresh worker running.
    pub recovery_secs: f64,
}

/// One batch as fed to the scheduler, journalled *before* the feed so a
/// recovering worker can replay it deterministically.
#[derive(Debug, Clone)]
struct LoggedBatch {
    feed_time: f64,
    envelopes: Vec<JobEnvelope>,
}

/// A captured shard state: the run's `StateBlob` wire image plus the
/// journal cursor it corresponds to.
#[derive(Debug, Clone)]
struct ShardCheckpoint {
    batches_done: usize,
    events_done: usize,
    jobs_done: usize,
    watermark: f64,
    price: f64,
    release_floor: f64,
    wire: Vec<u8>,
}

/// Everything a shard's worker writes: the durable batch log, the derived
/// per-event records, and the lifecycle outcome.
#[derive(Debug, Default)]
struct ShardJournal {
    log: Vec<LoggedBatch>,
    events: Vec<ServedEvent>,
    jobs: Vec<Job>,
    price_trace: Vec<f64>,
    depth_samples: Vec<usize>,
    checkpoint: Option<ShardCheckpoint>,
    checkpoints_taken: usize,
    handoffs: usize,
    handoff_secs: Vec<f64>,
    drain_secs: f64,
    finished: Option<Schedule>,
    failed: Option<ScheduleError>,
    crashed: bool,
}

/// Shared per-shard state: the queue, the published backpressure signals
/// and the journal.
#[derive(Debug)]
struct ShardShared {
    shard: usize,
    queue: ArrivalQueue<JobEnvelope>,
    /// Submissions currently inside `submit()` for this shard; a draining
    /// worker finishes only when this reaches zero, closing the race
    /// between a final push and the shutdown check.
    submitting: AtomicUsize,
    /// The rolling dual price, published as f64 bits.
    price_bits: AtomicU64,
    /// The shard's feed watermark (last feed time), published as f64 bits.
    watermark_bits: AtomicU64,
    /// Crash injection: the worker exits (without checkpointing) at the
    /// first quiescent boundary with `batches_done >= crash_at`.
    crash_at: AtomicUsize,
    /// Hand-off request: the worker checkpoints at the next quiescent
    /// boundary and exits.
    handoff: AtomicBool,
    /// Raised when the shard's run was poisoned by an ingestion error (the
    /// worker exits, surfacing the error at shutdown).  Admission bounces
    /// new submissions instead of letting producers spin on a queue no
    /// worker will ever drain.
    failed: AtomicBool,
    /// The live worker thread, for unparking.
    worker: Mutex<Option<std::thread::Thread>>,
    journal: Mutex<ShardJournal>,
}

impl ShardShared {
    fn new(shard: usize, queue_capacity: usize) -> Self {
        Self {
            shard,
            queue: ArrivalQueue::with_capacity(queue_capacity),
            submitting: AtomicUsize::new(0),
            price_bits: AtomicU64::new(0.0_f64.to_bits()),
            watermark_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            crash_at: AtomicUsize::new(usize::MAX),
            handoff: AtomicBool::new(false),
            failed: AtomicBool::new(false),
            worker: Mutex::new(None),
            journal: Mutex::new(ShardJournal::default()),
        }
    }

    // Ordering contract for the published signals: the worker stores both
    // with `Release` after updating the journal under its mutex, and
    // admission reads them with `Acquire`.  Each signal is a single
    // `AtomicU64` of f64 bits, so a read is never torn — it is some value
    // the worker actually published — and the acquire edge makes the
    // batch that produced it (journal entries, watermark advance) visible
    // to the reader.
    fn price(&self) -> f64 {
        f64::from_bits(self.price_bits.load(Ordering::Acquire))
    }

    fn watermark(&self) -> f64 {
        f64::from_bits(self.watermark_bits.load(Ordering::Acquire))
    }

    fn unpark_worker(&self) {
        if let Some(t) = self.worker.lock().unwrap().as_ref() {
            t.unpark();
        }
    }
}

/// State shared between the daemon, the tenant handles and the workers.
#[derive(Debug)]
struct ServiceShared {
    config: ServeConfig,
    shutdown: AtomicBool,
    paused: AtomicBool,
    tenants: Vec<TenantState>,
    shards: Vec<Arc<ShardShared>>,
}

/// A tenant's submission capability.  Cloneable and sendable: a tenant may
/// submit from as many threads as it likes; the handle *is* the identity
/// (the envelope's `tenant` field is overwritten with the handle's).
#[derive(Debug, Clone)]
pub struct TenantHandle {
    inner: Arc<ServiceShared>,
    tenant: TenantId,
}

impl TenantHandle {
    /// The tenant this handle submits as.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The shard this tenant's submissions enter.
    pub fn shard(&self) -> usize {
        self.inner.tenants[self.tenant.index()].spec.shard
    }

    /// The feed watermark of this tenant's shard (the time of its last
    /// ingestion batch; `-inf` before the first).  Tenants producing from a
    /// replayed or simulated clock pace against this to keep their releases
    /// near the shard's virtual time — submissions whose deadlines fall
    /// behind it are rejected as expired.
    pub fn watermark(&self) -> f64 {
        self.inner.shards[self.shard()].watermark()
    }

    /// Submits an envelope through the admission gates, in order: shutdown,
    /// model-field validity, staleness and expiry against the shard
    /// watermark, the dual-price gate, the outstanding-jobs quota, and
    /// finally the bounded queue.  Returns where the submission ended up,
    /// or the typed gate that stopped it — never panics, never poisons the
    /// scheduler run.
    pub fn submit(&self, mut envelope: JobEnvelope) -> Result<Submission, IngressError> {
        envelope.tenant = self.tenant;
        let state = &self.inner.tenants[self.tenant.index()];
        let shard = &self.inner.shards[state.spec.shard];
        // Announce the in-flight submission before the shutdown check, so
        // a draining worker that sees the flag raised always waits for us.
        //
        // Ordering contract: both RMWs are `AcqRel` so the counter's
        // modification order carries synchronisation.  The increment's
        // acquire side pairs with the worker's probe (see the drain check
        // in `worker_loop`): if the probe read zero *after* shutdown was
        // observed, our increment comes later in the modification order
        // and its acquire edge makes the shutdown flag visible to the
        // `admit` call below, which then bounces.  The decrement's release
        // side publishes the queue push that `admit` performed, so a probe
        // that reads zero also observes every completed push.
        shard.submitting.fetch_add(1, Ordering::AcqRel);
        let result = self.admit(state, shard, envelope);
        shard.submitting.fetch_sub(1, Ordering::AcqRel);
        if matches!(result, Ok(Submission::Queued { .. })) {
            shard.unpark_worker();
        }
        result
    }

    fn admit(
        &self,
        state: &TenantState,
        shard: &ShardShared,
        envelope: JobEnvelope,
    ) -> Result<Submission, IngressError> {
        if self.inner.shutdown.load(Ordering::Acquire) || shard.failed.load(Ordering::Acquire) {
            return Err(IngressError::ShuttingDown);
        }
        state.submitted.incr();
        envelope.validate().inspect_err(|_| {
            state.rejected_invalid.incr();
        })?;
        let watermark = shard.watermark();
        let tolerance = self.inner.config.stale_tolerance;
        if envelope.release < watermark - tolerance {
            state.rejected_stale.incr();
            return Err(IngressError::Stale {
                tenant: self.tenant,
                tag: envelope.tag,
                release: envelope.release,
                watermark,
                tolerance,
            });
        }
        // Dead on arrival: the job would be fed no earlier than the
        // watermark, past its own deadline.  (A job can still *expire in
        // the queue* if the watermark overtakes it before feeding — the
        // worker then synthesises the rejection at feed time.)
        if envelope.deadline <= watermark {
            state.rejected_stale.incr();
            return Err(IngressError::Expired {
                tenant: self.tenant,
                tag: envelope.tag,
                deadline: envelope.deadline,
                watermark,
            });
        }
        let price = shard.price();
        let threshold = state.spec.price_ceiling.min(envelope.value);
        if price > threshold {
            return match state.spec.policy {
                BackpressurePolicy::Defer => {
                    state.deferred.incr();
                    Err(IngressError::Backpressure {
                        tenant: self.tenant,
                        price,
                        threshold,
                    })
                }
                BackpressurePolicy::Reject => {
                    state.rejected_by_price.incr();
                    state.add_lost_value(envelope.value);
                    Ok(Submission::RejectedByPrice { price })
                }
            };
        }
        // The gauge's atomic increment *reserves* the quota slot (it
        // returns the previous value), so concurrent submitters cannot
        // jointly overshoot; failed gates release the reservation.
        let outstanding = state.outstanding.incr();
        if outstanding >= state.spec.quota {
            state.outstanding.decr();
            state.quota_exceeded.incr();
            return Err(IngressError::QuotaExceeded {
                tenant: self.tenant,
                limit: state.spec.quota,
            });
        }
        if shard.queue.push(envelope).is_err() {
            state.outstanding.decr();
            state.queue_full.incr();
            return Err(IngressError::QueueFull {
                shard: state.spec.shard,
                capacity: shard.queue.capacity(),
            });
        }
        Ok(Submission::Queued {
            shard: state.spec.shard,
        })
    }
}

/// The worker's feed cursor: how far the run has progressed, as journal
/// coordinates.
#[derive(Debug, Clone, Copy)]
struct FeedCursor {
    batches_done: usize,
    jobs_done: usize,
    price: f64,
    /// The largest release the run has been fed so far.  The online model
    /// requires nondecreasing releases (PD's partition refinement keys on
    /// them), but a multi-tenant queue interleaves producers' releases out
    /// of order — late live jobs are fed with their release clamped up to
    /// this floor (never past the feed time, so their windows stay open).
    release_floor: f64,
}

/// A worker's starting state: a run plus the cursor it is at.
struct WorkerSeed<R> {
    run: R,
    cursor: FeedCursor,
}

/// Splits one coalesced burst off the front of `pending`: the maximal run
/// of consecutive envelopes whose releases lie within `window` of the
/// first's — the same rule as `pss_sim::coalesce_arrivals`, applied to the
/// drained stream.  `window == 0` yields singletons.
fn split_burst(pending: &mut VecDeque<JobEnvelope>, window: f64) -> Vec<JobEnvelope> {
    let head = pending.pop_front().expect("split_burst on empty pending");
    let first = head.release;
    let mut burst = vec![head];
    if window > 0.0 {
        while pending.front().is_some_and(|e| e.release <= first + window) {
            burst.push(pending.pop_front().unwrap());
        }
    }
    burst
}

/// Feeds one journalled batch into the run and records its outcomes:
/// per-decision events, the EWMA price update, the price trace and the
/// published watermark.  Shared verbatim by the live worker path and the
/// recovery replay, which is what makes replay bit-identical.
///
/// A job whose deadline the batch's feed time has already overtaken
/// (admitted in time, then *expired in the queue* while the watermark ran
/// ahead) is never shown to the scheduler — the model forbids arrivals
/// past the deadline, and the algorithms treat them as contract
/// violations.  The service synthesises the rejection the model implies
/// (`Decision::reject(value)`, marked [`ServedEvent::expired`]) so the
/// boundary stays total and the run is never poisoned.  The guard depends
/// only on the journalled envelopes and feed time, so replay reproduces
/// it bit-for-bit.
fn feed_batch<R: OnlineScheduler>(
    run: &mut R,
    shard: &ShardShared,
    journal: &mut ShardJournal,
    cursor: &mut FeedCursor,
    smoothing: f64,
    batch: &LoggedBatch,
) -> Result<(), ScheduleError> {
    let base = cursor.jobs_done;
    let jobs: Vec<Job> = batch
        .envelopes
        .iter()
        .enumerate()
        .map(|(k, e)| {
            let mut job = e.job(JobId(base + k));
            if job.deadline > batch.feed_time {
                // Live job: clamp a late release up to the run's release
                // floor — the online model requires nondecreasing releases,
                // and a multi-tenant queue interleaves them out of order.
                // The floor never exceeds the feed time, so the clamped
                // window stays open; expired jobs (never fed) keep their
                // original release for the record.
                job.release = job.release.max(cursor.release_floor);
                cursor.release_floor = job.release;
            }
            job
        })
        .collect();
    let live: Vec<Job> = jobs
        .iter()
        .filter(|j| j.deadline > batch.feed_time)
        .cloned()
        .collect();
    let mut live_decisions = run.on_arrivals(&live, batch.feed_time)?.into_iter();
    for (envelope, job) in batch.envelopes.iter().zip(&jobs) {
        let expired = job.deadline <= batch.feed_time;
        let decision = if expired {
            Decision::reject(envelope.value)
        } else {
            live_decisions
                .next()
                .expect("one decision per live job in the batch")
        };
        cursor.price = (1.0 - smoothing) * cursor.price + smoothing * decision.dual;
        journal.events.push(ServedEvent {
            shard: shard.shard,
            tenant: envelope.tenant,
            tag: envelope.tag,
            job: job.id,
            release: envelope.release,
            feed_time: batch.feed_time,
            batch: cursor.batches_done,
            accepted: decision.accepted,
            expired,
            dual: decision.dual,
        });
    }
    cursor.jobs_done += jobs.len();
    cursor.batches_done += 1;
    journal.jobs.extend(jobs);
    journal.price_trace.push(cursor.price);
    // `Release` publication: an admission thread that acquires either
    // signal also sees this batch's journal updates (see the contract on
    // `ShardShared::price`).  The watermark is stored after the price so a
    // tenant pacing on the watermark never sees a price older than it.
    shard
        .price_bits
        .store(cursor.price.to_bits(), Ordering::Release);
    shard
        .watermark_bits
        .store(batch.feed_time.to_bits(), Ordering::Release);
    Ok(())
}

/// Captures a checkpoint: the run's `StateBlob` wire image plus the
/// journal cursor, stored in the shard journal.
fn capture_checkpoint<R: Checkpointable>(shard: &ShardShared, run: &R, cursor: &FeedCursor) {
    let wire = run.snapshot().to_bytes();
    let mut journal = shard.journal.lock().unwrap();
    let events_done = journal.events.len();
    journal.checkpoints_taken += 1;
    journal.checkpoint = Some(ShardCheckpoint {
        batches_done: cursor.batches_done,
        events_done,
        jobs_done: cursor.jobs_done,
        watermark: shard.watermark(),
        price: cursor.price,
        release_floor: cursor.release_floor,
        wire,
    });
}

fn spawn_worker<R>(
    shared: Arc<ServiceShared>,
    shard: Arc<ShardShared>,
    seed: WorkerSeed<R>,
) -> JoinHandle<()>
where
    R: OnlineScheduler + Checkpointable + Send + 'static,
{
    std::thread::Builder::new()
        .name(format!("pss-serve-{}", shard.shard))
        .spawn(move || worker_loop(shared, shard, seed))
        .expect("failed to spawn shard worker thread")
}

fn worker_loop<R: OnlineScheduler + Checkpointable>(
    shared: Arc<ServiceShared>,
    shard: Arc<ShardShared>,
    seed: WorkerSeed<R>,
) {
    *shard.worker.lock().unwrap() = Some(std::thread::current());
    let config = shared.config;
    let WorkerSeed {
        mut run,
        mut cursor,
    } = seed;
    let mut pending: VecDeque<JobEnvelope> = VecDeque::new();
    let mut drain_buf: Vec<JobEnvelope> = Vec::new();
    let mut drain_from: Option<Instant> = None;
    loop {
        if pending.is_empty() {
            // A quiescent batch boundary: no drained-but-unfed arrivals in
            // hand.  Lifecycle signals are honoured only here, so a dying
            // worker never loses acknowledged work.
            if cursor.batches_done >= shard.crash_at.load(Ordering::Acquire) {
                // Injected crash: die *without* checkpointing; the run's
                // in-memory state is lost with this thread.
                shard.journal.lock().unwrap().crashed = true;
                return;
            }
            // `AcqRel` swap: consume the request (release keeps the reset
            // ordered for a later requester; acquire pairs with the
            // control plane's `Release` store so its writes are visible).
            if shard.handoff.swap(false, Ordering::AcqRel) {
                capture_checkpoint(&shard, &run, &cursor);
                return;
            }
            if shared.paused.load(Ordering::Acquire) && !shared.shutdown.load(Ordering::Acquire) {
                std::thread::park_timeout(IDLE_PARK);
                continue;
            }
            if shared.shutdown.load(Ordering::Acquire) && drain_from.is_none() {
                drain_from = Some(Instant::now());
            }
            let depth = shard.queue.len();
            drain_buf.clear();
            if shard.queue.drain_into(&mut drain_buf, config.max_batch) == 0 {
                // Drain-completion check.  Probe `submitting` FIRST, with
                // an `AcqRel` RMW (not a plain load): an RMW always reads
                // the latest value in the counter's modification order,
                // and its release side means any submitter whose increment
                // lands *after* this probe synchronises with it — having
                // already observed `shutdown` (which happened-before the
                // probe via our acquire load above), that submitter
                // bounces in `admit` and never pushes.  A probe of zero
                // also observes every completed push, because each
                // submitter's `AcqRel` decrement released its push into
                // the RMW chain the probe acquires.  Only then re-check
                // the queue: any push the probe admitted is now visible,
                // so an empty queue here really is the last word.  (The
                // previous plain-`Acquire` load could miss a submitter
                // that slipped between the drain and the check, losing its
                // final push — the model checker's shutdown model catches
                // exactly that interleaving.)
                if shared.shutdown.load(Ordering::Acquire)
                    && shard.submitting.fetch_add(0, Ordering::AcqRel) == 0
                    && shard.queue.is_empty()
                {
                    let started = drain_from.unwrap_or_else(Instant::now);
                    let result = run.finish();
                    let mut journal = shard.journal.lock().unwrap();
                    journal.drain_secs = started.elapsed().as_secs_f64();
                    match result {
                        Ok(schedule) => journal.finished = Some(schedule),
                        Err(e) => journal.failed = Some(e),
                    }
                    return;
                }
                std::thread::park_timeout(IDLE_PARK);
                continue;
            }
            for envelope in &drain_buf {
                shared.tenants[envelope.tenant.index()].outstanding.decr();
            }
            shard.journal.lock().unwrap().depth_samples.push(depth);
            pending.extend(drain_buf.drain(..));
        }
        let envelopes = split_burst(&mut pending, config.coalesce_window);
        let release_max = envelopes
            .iter()
            .map(|e| e.release)
            .fold(f64::NEG_INFINITY, f64::max);
        let batch = LoggedBatch {
            // Late (stale-admitted) jobs are fed at the watermark so the
            // nondecreasing-arrival contract always holds.
            feed_time: shard.watermark().max(release_max),
            envelopes,
        };
        {
            let mut journal = shard.journal.lock().unwrap();
            journal.log.push(batch.clone());
            if let Err(e) = feed_batch(
                &mut run,
                &shard,
                &mut journal,
                &mut cursor,
                config.price_smoothing,
                &batch,
            ) {
                // An ingestion error poisons the run; surface it at
                // shutdown instead of panicking the worker, and stop
                // admitting so producers don't spin on a dead queue.
                journal.failed = Some(e);
                shard.failed.store(true, Ordering::Release);
                return;
            }
        }
        if config.checkpoint_every > 0 && cursor.batches_done % config.checkpoint_every == 0 {
            capture_checkpoint(&shard, &run, &cursor);
        }
    }
}

/// A running multi-tenant ingestion service over online algorithm `A`.
///
/// Created by [`Daemon::spawn`]; submissions flow through the
/// [`TenantHandle`]s it returns.  The daemon object itself is the *control
/// plane*: lifecycle operations (crash injection, recovery, hand-off,
/// shutdown) and introspection (prices, queue depths).
pub struct Daemon<A: OnlineAlgorithm>
where
    A::Run: Checkpointable + Send + 'static,
{
    algorithm: A,
    inner: Arc<ServiceShared>,
    workers: Vec<Option<JoinHandle<()>>>,
}

impl<A> Daemon<A>
where
    A: OnlineAlgorithm,
    A::Run: Checkpointable + Send + 'static,
{
    /// Starts the service: one scheduler run and one worker thread per
    /// shard, plus one [`TenantHandle`] per registered tenant (in
    /// registration order).
    pub fn spawn(
        algorithm: A,
        config: ServeConfig,
        tenants: Vec<TenantSpec>,
    ) -> Result<(Self, Vec<TenantHandle>), ScheduleError> {
        config.validate()?;
        for (i, spec) in tenants.iter().enumerate() {
            if spec.shard >= config.shards {
                return Err(ScheduleError::Internal(format!(
                    "tenant {i} ({}) is placed on shard {} but the service has {} shard(s)",
                    spec.name, spec.shard, config.shards
                )));
            }
        }
        let inner = Arc::new(ServiceShared {
            config,
            shutdown: AtomicBool::new(false),
            paused: AtomicBool::new(config.start_paused),
            tenants: tenants.into_iter().map(TenantState::new).collect(),
            shards: (0..config.shards)
                .map(|s| Arc::new(ShardShared::new(s, config.queue_capacity)))
                .collect(),
        });
        let mut workers = Vec::with_capacity(config.shards);
        for shard in &inner.shards {
            let run = algorithm.start(config.machines, config.alpha)?;
            let cursor = FeedCursor {
                batches_done: 0,
                jobs_done: 0,
                price: 0.0,
                release_floor: f64::NEG_INFINITY,
            };
            // An initial checkpoint makes recovery possible from batch 0.
            capture_checkpoint(shard, &run, &cursor);
            let seed = WorkerSeed { run, cursor };
            workers.push(Some(spawn_worker(
                Arc::clone(&inner),
                Arc::clone(shard),
                seed,
            )));
        }
        let handles = (0..inner.tenants.len())
            .map(|i| TenantHandle {
                inner: Arc::clone(&inner),
                tenant: TenantId(i as u32),
            })
            .collect();
        Ok((
            Self {
                algorithm,
                inner,
                workers,
            },
            handles,
        ))
    }

    /// The algorithm's display name.
    pub fn algorithm_name(&self) -> String {
        self.algorithm.algorithm_name()
    }

    /// The service configuration.
    pub fn config(&self) -> ServeConfig {
        self.inner.config
    }

    /// A fresh handle for a registered tenant, or
    /// [`IngressError::UnknownTenant`] — the error-path twin of the handles
    /// [`spawn`](Self::spawn) returns.
    pub fn handle(&self, tenant: TenantId) -> Result<TenantHandle, IngressError> {
        if tenant.index() >= self.inner.tenants.len() {
            return Err(IngressError::UnknownTenant(tenant));
        }
        Ok(TenantHandle {
            inner: Arc::clone(&self.inner),
            tenant,
        })
    }

    /// Unpauses a service spawned with `start_paused`.
    pub fn resume(&self) {
        self.inner.paused.store(false, Ordering::Release);
        for shard in &self.inner.shards {
            shard.unpark_worker();
        }
    }

    /// The shard's current rolling dual price (the backpressure signal).
    pub fn shard_price(&self, shard: usize) -> f64 {
        self.inner.shards[shard].price()
    }

    /// A snapshot of the shard's arrival-queue depth.
    pub fn queue_depth(&self, shard: usize) -> usize {
        self.inner.shards[shard].queue.len()
    }

    /// The shard's feed watermark (the time of its last ingestion batch;
    /// `-inf` before the first).  Staleness is judged against this.
    pub fn shard_watermark(&self, shard: usize) -> f64 {
        self.inner.shards[shard].watermark()
    }

    /// Injects a crash: the shard's worker exits *without* checkpointing at
    /// the first quiescent boundary where it has fed at least `at_batches`
    /// batches, losing all in-memory run state.  Blocks until the worker is
    /// dead.  The shard's queue keeps accepting submissions; call
    /// [`recover_shard`](Self::recover_shard) to resume ingestion.
    ///
    /// The worker only reaches boundaries while it has arrivals to feed or
    /// polls an empty queue, so `at_batches` must be at most the batches
    /// the pending workload produces, or this blocks until more arrive.
    pub fn crash_shard(&mut self, shard: usize, at_batches: usize) -> Result<(), ScheduleError> {
        let sh = &self.inner.shards[shard];
        sh.crash_at.store(at_batches, Ordering::Release);
        sh.unpark_worker();
        let handle = self.workers[shard]
            .take()
            .ok_or_else(|| ScheduleError::Internal(format!("shard {shard} has no live worker")))?;
        handle
            .join()
            .map_err(|_| ScheduleError::Internal(format!("shard {shard} worker panicked")))?;
        sh.crash_at.store(usize::MAX, Ordering::Release);
        debug_assert!(sh.journal.lock().unwrap().crashed);
        Ok(())
    }

    /// Restores a dead shard on a fresh worker thread: reconstructs the run
    /// from the last checkpoint's `StateBlob` wire image, rewinds the
    /// derived records to the checkpoint, replays the journalled batches
    /// after it (bit-identically — same feed times, same dense ids), and
    /// resumes ingestion where the dead worker left off.
    pub fn recover_shard(&mut self, shard: usize) -> Result<RecoveryReport, ScheduleError> {
        if self.workers[shard].is_some() {
            return Err(ScheduleError::Internal(format!(
                "shard {shard} still has a live worker; crash or hand it off first"
            )));
        }
        let started = Instant::now();
        let sh = Arc::clone(&self.inner.shards[shard]);
        let corrupted =
            |e: pss_types::SnapshotError| ScheduleError::Internal(format!("restore failed: {e}"));
        let mut journal = sh.journal.lock().unwrap();
        let ckpt = journal
            .checkpoint
            .clone()
            .ok_or_else(|| ScheduleError::Internal(format!("shard {shard} has no checkpoint")))?;
        journal.events.truncate(ckpt.events_done);
        journal.jobs.truncate(ckpt.jobs_done);
        journal.price_trace.truncate(ckpt.batches_done);
        journal.crashed = false;
        let blob = StateBlob::from_bytes(&ckpt.wire).map_err(corrupted)?;
        let mut run = A::Run::restore(&blob).map_err(corrupted)?;
        sh.price_bits.store(ckpt.price.to_bits(), Ordering::Release);
        sh.watermark_bits
            .store(ckpt.watermark.to_bits(), Ordering::Release);
        let mut cursor = FeedCursor {
            batches_done: ckpt.batches_done,
            jobs_done: ckpt.jobs_done,
            price: ckpt.price,
            release_floor: ckpt.release_floor,
        };
        let delta: Vec<LoggedBatch> = journal.log[ckpt.batches_done..].to_vec();
        for batch in &delta {
            feed_batch(
                &mut run,
                &sh,
                &mut journal,
                &mut cursor,
                self.inner.config.price_smoothing,
                batch,
            )
            .map_err(|e| {
                ScheduleError::Internal(format!("journal replay rejected a logged batch: {e}"))
            })?;
        }
        drop(journal);
        let seed = WorkerSeed { run, cursor };
        self.workers[shard] = Some(spawn_worker(Arc::clone(&self.inner), sh, seed));
        Ok(RecoveryReport {
            replayed_batches: delta.len(),
            recovery_secs: started.elapsed().as_secs_f64(),
        })
    }

    /// Gracefully migrates a shard to a fresh worker thread: the old worker
    /// checkpoints at its next quiescent boundary and exits, the new one
    /// restores from the blob (empty replay delta) and continues —
    /// bit-identically, as if the hand-off never happened.  Returns the
    /// recovery statistics; the hand-off latency is also recorded in the
    /// service report.
    pub fn handoff_shard(&mut self, shard: usize) -> Result<RecoveryReport, ScheduleError> {
        let started = Instant::now();
        let sh = &self.inner.shards[shard];
        sh.handoff.store(true, Ordering::Release);
        sh.unpark_worker();
        let handle = self.workers[shard]
            .take()
            .ok_or_else(|| ScheduleError::Internal(format!("shard {shard} has no live worker")))?;
        handle
            .join()
            .map_err(|_| ScheduleError::Internal(format!("shard {shard} worker panicked")))?;
        let report = self.recover_shard(shard)?;
        let secs = started.elapsed().as_secs_f64();
        let mut journal = self.inner.shards[shard].journal.lock().unwrap();
        journal.handoffs += 1;
        journal.handoff_secs.push(secs);
        Ok(report)
    }

    /// Drains and stops the service: no new submissions are admitted,
    /// every worker feeds its queue dry, finishes its run, and the full
    /// [`ServiceReport`] is assembled — per-shard schedules, decision
    /// events, price traces, per-tenant accounting and lifecycle latencies.
    pub fn shutdown(mut self) -> Result<ServiceReport, ScheduleError> {
        self.inner.shutdown.store(true, Ordering::Release);
        for shard in &self.inner.shards {
            shard.unpark_worker();
        }
        for (s, worker) in self.workers.iter_mut().enumerate() {
            let handle = worker.take().ok_or_else(|| {
                ScheduleError::Internal(format!(
                    "shard {s} has no live worker at shutdown (crashed and never recovered?)"
                ))
            })?;
            handle
                .join()
                .map_err(|_| ScheduleError::Internal(format!("shard {s} worker panicked")))?;
        }
        let tenant_count = self.inner.tenants.len();
        let mut accepted = vec![0u64; tenant_count];
        let mut rejected = vec![0u64; tenant_count];
        let mut shards = Vec::with_capacity(self.inner.shards.len());
        let mut drain = DrainSummary::default();
        for sh in &self.inner.shards {
            let mut journal = sh.journal.lock().unwrap();
            if let Some(e) = journal.failed.take() {
                return Err(e);
            }
            let schedule = journal.finished.take().ok_or_else(|| {
                ScheduleError::Internal(format!("shard {} did not finish its run", sh.shard))
            })?;
            for event in &journal.events {
                if event.accepted {
                    accepted[event.tenant.index()] += 1;
                } else {
                    rejected[event.tenant.index()] += 1;
                }
            }
            drain.drain_secs.push(journal.drain_secs);
            drain
                .handoff_secs
                .extend(journal.handoff_secs.iter().copied());
            shards.push(ShardReport {
                shard: sh.shard,
                jobs: std::mem::take(&mut journal.jobs),
                events: std::mem::take(&mut journal.events),
                batches: journal.log.len(),
                schedule,
                price_trace: std::mem::take(&mut journal.price_trace),
                final_price: sh.price(),
                depth_samples: std::mem::take(&mut journal.depth_samples),
                checkpoints: journal.checkpoints_taken,
                handoffs: journal.handoffs,
                drain_secs: journal.drain_secs,
            });
        }
        let tenants = self
            .inner
            .tenants
            .iter()
            .enumerate()
            .map(|(i, state)| state.summary(accepted[i], rejected[i]))
            .collect();
        Ok(ServiceReport {
            algorithm: self.algorithm.algorithm_name(),
            machines: self.inner.config.machines,
            alpha: self.inner.config.alpha,
            shards,
            tenants,
            drain,
        })
    }
}

impl<A: OnlineAlgorithm> Drop for Daemon<A>
where
    A::Run: Checkpointable + Send + 'static,
{
    fn drop(&mut self) {
        // A dropped daemon releases its workers: raise the drain flag so
        // parked threads exit instead of leaking.  (Orderly users call
        // `shutdown`, which joins them and collects the report.)
        self.inner.shutdown.store(true, Ordering::Release);
        for shard in &self.inner.shards {
            shard.unpark_worker();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_rejects_nonsense() {
        assert!(ServeConfig::default().validate().is_ok());
        for broken in [
            ServeConfig {
                machines: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                alpha: 1.0,
                ..ServeConfig::default()
            },
            ServeConfig {
                shards: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                max_batch: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                price_smoothing: 0.0,
                ..ServeConfig::default()
            },
            ServeConfig {
                price_smoothing: 1.5,
                ..ServeConfig::default()
            },
            ServeConfig {
                coalesce_window: -1.0,
                ..ServeConfig::default()
            },
            ServeConfig {
                stale_tolerance: f64::NAN,
                ..ServeConfig::default()
            },
        ] {
            assert!(broken.validate().is_err(), "accepted {broken:?}");
        }
    }

    #[test]
    fn split_burst_mirrors_the_coalescing_rule() {
        let env = |release: f64| JobEnvelope::new(TenantId(0), 0, release, release + 1.0, 0.1, 1.0);
        let mut pending: VecDeque<JobEnvelope> =
            [0.0, 0.3, 0.9, 1.0, 5.0].into_iter().map(env).collect();
        // Window 0: singletons, even for equal releases.
        let burst = split_burst(&mut pending, 0.0);
        assert_eq!(burst.len(), 1);
        // Window 1.0 from the *first* release (0.3): 0.9 and 1.0 join.
        let burst = split_burst(&mut pending, 1.0);
        assert_eq!(burst.len(), 3);
        assert_eq!(burst[0].release, 0.3);
        assert_eq!(burst[2].release, 1.0);
        let burst = split_burst(&mut pending, 1.0);
        assert_eq!(burst.len(), 1);
        assert_eq!(burst[0].release, 5.0);
        assert!(pending.is_empty());
    }
}
