//! # pss-serve
//!
//! A long-running, multi-tenant ingestion daemon over the event-driven
//! online scheduling API — the paper's online model turned into a service.
//!
//! Where `pss-sim`'s `StreamingSimulation` *replays* a finite instance,
//! the [`Daemon`] ingests an open-ended stream from concurrent tenants:
//!
//! * **[`queue`]** — a bounded lock-free multi-producer arrival queue
//!   (Vyukov-style per-slot sequence ring; the workspace's only `unsafe`),
//!   one per shard, between tenant handles and the worker thread.
//! * **[`tenant`]** — the tenant registry: placement, outstanding-jobs
//!   quota, price ceiling and [`BackpressurePolicy`], plus lock-free
//!   admission accounting.
//! * **[`daemon`]** — the service itself: sharded workers draining queues
//!   into `OnlineScheduler` runs with burst coalescing (one replan per
//!   burst under load), dual-price backpressure at admission (the rolling
//!   EWMA of the scheduler's own duals is the congestion signal), and a
//!   checkpointed lifecycle — crash injection, bit-identical journal-replay
//!   recovery, graceful worker hand-off, and a draining shutdown.
//! * **[`report`]** — what a run produces: per-decision events, per-shard
//!   schedules and price traces, per-tenant accounting, and the projection
//!   onto `pss_metrics::ServiceSummary` for JSON export.
//! * **[`retry`]** — producer-side supervision: [`RetryPolicy`] drives a
//!   submission through bounded exponential backoff with deterministic
//!   jitter, honouring `IngressError::is_retryable`, to success or a typed
//!   [`RetryError`] give-up.
//! * **[`router`]** — one logical stream over many shards:
//!   [`StreamRouter`] routes every arrival by a pluggable
//!   [`RoutePolicy`](pss_sim::RoutePolicy) (hash / round-robin /
//!   cheapest-price over the shards' lock-free published dual-price
//!   EWMAs) and zips the per-shard outcomes into one logical schedule
//!   (`pss_types::merge_frontiers`) — wave-stepped for bit-replayable
//!   routing, free-running for throughput.
//! * **[`chaos`]** — deterministic fault injection: a seeded [`FaultPlan`]
//!   (worker kills, checkpoint corruption, transient feed faults,
//!   queue-full storms, dead-on-arrival floods, adversarial out-of-order
//!   interleavings) driven wave-by-wave by [`ChaosDriver`], with
//!   [`deterministic_fields_equal`] as the oracle that a fault-injected
//!   run ends equal to the fault-free run on every deterministic field.
//!
//! The service boundary is *total*: every way a submission can fail
//! surfaces as a typed `pss_types::IngressError`, never a panic and never
//! a poisoned scheduler run.  A single-tenant, single-shard daemon is
//! bit-identical to `StreamingSimulation::with_coalescing` on the same
//! stream — pinned by the workspace's differential tests.

// The one crate with `unsafe` (the queue's slot handoff): every unsafe
// operation must sit in an explicit `unsafe { }` block with its own
// SAFETY comment, even inside `unsafe fn` — enforced by pss-lint's
// `crate-attrs` rule.
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
pub mod daemon;
pub mod queue;
pub mod report;
pub mod retry;
pub mod router;
pub mod tenant;

pub use chaos::{deterministic_fields_equal, ChaosDriver, ChaosRun, ChaosStats, FaultPlan};
pub use daemon::{Daemon, RecoveryReport, ServeConfig, Submission, TenantHandle, WatchdogVerdict};
pub use queue::ArrivalQueue;
pub use report::{ServedEvent, ServiceReport, ShardReport};
pub use retry::{RetryError, RetryPolicy};
pub use router::{routed_fields_equal, RoutedReport, RoutedSubmission, StreamRouter};
pub use tenant::{BackpressurePolicy, TenantSpec};
