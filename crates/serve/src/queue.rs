//! A bounded, lock-free multi-producer queue — the arrival path between
//! tenant handles and a shard's worker thread.
//!
//! The offline build has no crossbeam, so the daemon carries its own ring:
//! the classic bounded MPMC queue of per-slot sequence numbers (Dmitry
//! Vyukov's design, the ancestor of `crossbeam::ArrayQueue`).  Each slot
//! carries an atomic *sequence*; producers and consumers claim positions
//! with a CAS on the global enqueue/dequeue cursors and then hand the slot
//! over by bumping its sequence, so the two sides never contend on the same
//! cacheline protocol and no operation ever blocks.
//!
//! The queue is deliberately *bounded*: a full queue returns the value to
//! the producer ([`ArrivalQueue::push`] → `Err`), which the daemon surfaces
//! as the typed, retryable `IngressError::QueueFull` — the first layer of
//! backpressure, ahead of the dual-price admission gate.  The capacity is
//! rounded up to a power of two (sequence arithmetic needs it); callers
//! that must *fill* the ring — the chaos driver's queue-full storm waves —
//! size their bursts to the rounded capacity, not the requested one.
//!
//! This is the only `unsafe` code in the workspace.  The invariant is the
//! standard one: a slot's value is initialised exactly when its sequence
//! admits a consumer (`seq == pos + 1`) and uninitialised when it admits a
//! producer (`seq == pos`); the `Acquire`/`Release` pairs on the sequence
//! make the value write happen-before the matching read.  The concurrent
//! stress tests below (multi-producer, full/empty races, drop accounting,
//! tiny capacities with many wrap-arounds) exercise it under real
//! contention, and the model-checked build (`--cfg pss_model_check`, see
//! `pss-check`) explores the interleavings exhaustively: the atomics and
//! the slot cells come from the `pss_check` facade, so every operation is
//! a schedule point and every cell access is race-checked.  The
//! publication store goes through `publish_ordering`, which the model
//! tests can weaken to `Relaxed` to prove the checker detects the
//! resulting race (the mutation gate).

use std::mem::MaybeUninit;

use pss_check::cell::UnsafeCell;
use pss_check::sync::atomic::{AtomicUsize, Ordering};

/// The ordering of the sequence store that publishes a slot to the other
/// side: `Release`, so the value write happens-before the `Acquire` load
/// that admits the next owner.
#[cfg(not(pss_model_check))]
#[inline(always)]
fn publish_ordering() -> Ordering {
    Ordering::Release
}

/// Model-checked builds can weaken the publication to `Relaxed` via
/// [`mutation::weaken_publish`]; the model checker must then report the
/// data race on the slot cell — the mutation gate that proves the checker
/// has teeth.  The flag itself is a plain `std` atomic (test control
/// plane, not modelled state).
#[cfg(pss_model_check)]
fn publish_ordering() -> Ordering {
    if mutation::WEAKEN_PUBLISH.load(std::sync::atomic::Ordering::Relaxed) {
        Ordering::Relaxed
    } else {
        Ordering::Release
    }
}

/// Mutation hooks for the model-checked build's self-tests.
#[cfg(pss_model_check)]
pub mod mutation {
    pub(super) static WEAKEN_PUBLISH: std::sync::atomic::AtomicBool =
        std::sync::atomic::AtomicBool::new(false);

    /// Weakens (or restores) the queue's publication ordering.  Only for
    /// the mutation-gate test; affects every queue in the process.
    pub fn weaken_publish(on: bool) {
        WEAKEN_PUBLISH.store(on, std::sync::atomic::Ordering::Relaxed);
    }
}

/// One slot of the ring: a sequence number and a possibly-initialised value.
struct Slot<T> {
    sequence: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded, lock-free multi-producer queue (used single-consumer by the
/// daemon: one worker drains each shard's queue).
///
/// Capacity is rounded up to the next power of two (minimum 2) so position
/// arithmetic is a mask.  `push` fails — returning the value — when the
/// queue is full; `pop` returns `None` when it is empty.  Neither ever
/// blocks or spins unboundedly.
pub struct ArrivalQueue<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    enqueue_pos: AtomicUsize,
    dequeue_pos: AtomicUsize,
}

// SAFETY: the protocol hands each value from exactly one producer to
// exactly one consumer through the slot's Acquire/Release sequence, so the
// queue is Sync whenever T may be sent between threads.
unsafe impl<T: Send> Sync for ArrivalQueue<T> {}
unsafe impl<T: Send> Send for ArrivalQueue<T> {}

impl<T> ArrivalQueue<T> {
    /// Creates a queue holding at least `capacity` elements (rounded up to
    /// the next power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Box<[Slot<T>]> = (0..cap)
            .map(|i| Slot {
                sequence: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Self {
            slots,
            mask: cap - 1,
            enqueue_pos: AtomicUsize::new(0),
            dequeue_pos: AtomicUsize::new(0),
        }
    }

    /// The queue's (rounded) capacity.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// A snapshot of the number of queued elements.  Approximate under
    /// concurrent pushes/pops (the two cursors are read independently) —
    /// good for depth telemetry, not for synchronisation.
    pub fn len(&self) -> usize {
        let head = self.enqueue_pos.load(Ordering::Relaxed);
        let tail = self.dequeue_pos.load(Ordering::Relaxed);
        head.saturating_sub(tail).min(self.capacity())
    }

    /// Whether the queue currently holds no elements (same snapshot caveat
    /// as [`len`](Self::len)).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `value`, or returns it if the queue is full at the instant
    /// the producer observed it.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                // The slot is free at `pos`; try to claim it.
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY (sequence-number invariant): we observed
                        // `seq == pos` with `Acquire`, which means the slot
                        // is producer-owned and its `MaybeUninit` holds no
                        // initialised value — either it was never written
                        // (fresh ring, `seq` initialised to the slot index)
                        // or the previous lap's consumer moved the value
                        // out with `assume_init_read` before releasing
                        // `seq = pos` (its store happened-before our load).
                        // The CAS on `enqueue_pos` then made us the *only*
                        // producer holding this `pos`, so until the
                        // publication store below no other thread touches
                        // the cell: writing uninitialised memory through
                        // the exclusive pointer is sound and leaks nothing.
                        slot.value.with_mut(|p| unsafe { (*p).write(value) });
                        // Publish: `Release` makes the value write above
                        // happen-before the consumer's `Acquire` load of
                        // `seq == pos + 1` (weakened only by the mutation
                        // gate, which the model checker must catch).
                        slot.sequence.store(pos + 1, publish_ordering());
                        return Ok(());
                    }
                    Err(current) => pos = current,
                }
            } else if diff < 0 {
                // The slot still holds a value from the previous lap: the
                // queue was full when observed.
                return Err(value);
            } else {
                // Another producer claimed `pos`; reload and retry.
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues the oldest element, or `None` if the queue is empty at the
    /// instant the consumer observed it.
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            let diff = seq as isize - (pos + 1) as isize;
            if diff == 0 {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY (sequence-number invariant): we observed
                        // `seq == pos + 1` with `Acquire`, which only the
                        // producer that claimed `pos` stores, *after* its
                        // value write, with `Release` — so the write
                        // happens-before this read and the cell holds an
                        // initialised value.  The CAS on `dequeue_pos`
                        // made us the only consumer holding this `pos`,
                        // and no producer touches the cell until it
                        // observes the `seq = pos + mask + 1` we store
                        // below; `assume_init_read` therefore moves the
                        // value out of memory we exclusively own, and the
                        // slot returns to "uninitialised, producer-owned"
                        // exactly when the next-lap producer is admitted.
                        let value = slot.value.with_mut(|p| unsafe { (*p).assume_init_read() });
                        slot.sequence.store(pos + self.mask + 1, publish_ordering());
                        return Some(value);
                    }
                    Err(current) => pos = current,
                }
            } else if diff < 0 {
                return None;
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Pops up to `max` elements into `out` (appending), returning how many
    /// were drained.  The worker's batch-drain entry point.
    pub fn drain_into(&self, out: &mut Vec<T>, max: usize) -> usize {
        let mut drained = 0;
        while drained < max {
            match self.pop() {
                Some(v) => {
                    out.push(v);
                    drained += 1;
                }
                None => break,
            }
        }
        drained
    }
}

impl<T> Drop for ArrivalQueue<T> {
    fn drop(&mut self) {
        // Drain remaining initialised slots so their destructors run.
        while self.pop().is_some() {}
    }
}

impl<T> std::fmt::Debug for ArrivalQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArrivalQueue")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as Counter;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_threaded() {
        let q = ArrivalQueue::with_capacity(8);
        assert!(q.is_empty());
        for i in 0..8 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 8);
        // Full: the value comes back.
        assert_eq!(q.push(99), Err(99));
        for i in 0..8 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        // Wrap around several laps.
        for lap in 0..5 {
            for i in 0..6 {
                q.push(lap * 10 + i).unwrap();
            }
            for i in 0..6 {
                assert_eq!(q.pop(), Some(lap * 10 + i));
            }
        }
    }

    #[test]
    fn capacity_rounds_up_to_powers_of_two() {
        assert_eq!(ArrivalQueue::<u8>::with_capacity(0).capacity(), 2);
        assert_eq!(ArrivalQueue::<u8>::with_capacity(3).capacity(), 4);
        assert_eq!(ArrivalQueue::<u8>::with_capacity(8).capacity(), 8);
        assert_eq!(ArrivalQueue::<u8>::with_capacity(1000).capacity(), 1024);
    }

    #[test]
    fn drain_into_respects_the_batch_bound() {
        let q = ArrivalQueue::with_capacity(16);
        for i in 0..10 {
            q.push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(q.drain_into(&mut out, 4), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(q.drain_into(&mut out, 100), 6);
        assert_eq!(out.len(), 10);
        assert_eq!(q.drain_into(&mut out, 100), 0);
    }

    #[test]
    fn multi_producer_single_consumer_preserves_every_element() {
        const PRODUCERS: usize = 4;
        const PER_PRODUCER: usize = 20_000;
        let q = Arc::new(ArrivalQueue::with_capacity(64));
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    let mut v = (p, i);
                    // Spin on full: the consumer is draining concurrently.
                    loop {
                        match q.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            }));
        }
        // Single consumer: per-producer sequences must arrive in order.
        let mut next = [0usize; PRODUCERS];
        let mut total = 0usize;
        while total < PRODUCERS * PER_PRODUCER {
            match q.pop() {
                Some((p, i)) => {
                    assert_eq!(i, next[p], "producer {p} reordered");
                    next[p] += 1;
                    total += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(q.pop(), None);
        assert!(next.iter().all(|&n| n == PER_PRODUCER));
    }

    #[test]
    fn tiny_capacity_queues_survive_heavy_wraparound() {
        // Capacities 2 and 4 with more producers than slots force maximal
        // contention: every push fights for one or two live slots and the
        // sequence numbers lap the ring thousands of times, hammering the
        // wrap-around arithmetic (`seq = pos + mask + 1`) that larger
        // capacities rarely stress.  The consumer asserts the exact
        // multiset (every element once) and per-producer FIFO order.
        // The checker's MPSC model explores the same protocol
        // exhaustively at small bounds; this is the full-scale twin.
        for capacity in [2usize, 4] {
            const PRODUCERS: usize = 6;
            const PER_PRODUCER: usize = 2_000;
            let q = Arc::new(ArrivalQueue::with_capacity(capacity));
            let mut handles = Vec::new();
            for p in 0..PRODUCERS {
                let q = Arc::clone(&q);
                handles.push(std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let mut v = (p, i);
                        loop {
                            match q.push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                }));
            }
            let mut next = [0usize; PRODUCERS];
            let mut total = 0usize;
            while total < PRODUCERS * PER_PRODUCER {
                match q.pop() {
                    Some((p, i)) => {
                        assert_eq!(i, next[p], "producer {p} reordered at capacity {capacity}");
                        next[p] += 1;
                        total += 1;
                    }
                    None => std::thread::yield_now(),
                }
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(q.pop(), None, "stray element at capacity {capacity}");
            assert!(
                next.iter().all(|&n| n == PER_PRODUCER),
                "lost elements at capacity {capacity}"
            );
        }
    }

    #[test]
    fn dropping_a_nonempty_queue_drops_the_elements() {
        #[derive(Debug)]
        struct Tracked(Arc<Counter>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                // Relaxed is enough: the whole test is single-threaded, so
                // program order alone sequences the bumps and the reads.
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(Counter::new(0));
        let q = ArrivalQueue::with_capacity(8);
        for _ in 0..5 {
            q.push(Tracked(Arc::clone(&drops))).unwrap();
        }
        drop(q.pop()); // one explicit
        assert_eq!(drops.load(Ordering::Relaxed), 1);
        drop(q); // four remaining
        assert_eq!(drops.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn len_is_a_sane_snapshot() {
        let q = ArrivalQueue::with_capacity(4);
        assert_eq!(q.len(), 0);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.len(), 2);
        q.pop().unwrap();
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
