//! Tenant registration: the per-tenant admission contract (shard, quota,
//! price ceiling, backpressure policy) and the lock-free accounting the
//! daemon keeps for each tenant.
//!
//! A tenant declares *up front* how it wants the service to treat it when
//! the dual price rises: a [`BackpressurePolicy::Defer`] tenant gets its
//! submissions bounced back as retryable `IngressError::Backpressure` (it
//! keeps the job and the value), a [`BackpressurePolicy::Reject`] tenant
//! has the service drop the job at admission and book its value as lost —
//! the service-level analogue of the scheduler's own `Decision::reject`.
//! Either way the *signal* is the same: the shard's rolling EWMA of the
//! duals its scheduler emits, compared against the smaller of the tenant's
//! price ceiling and the job's declared value.
//!
//! All counters are plain atomics updated on the submitters' threads; the
//! two scheduler-outcome counts (`accepted`, `rejected_by_scheduler`) are
//! *not* kept here — they are derived from the shard journals at shutdown,
//! so that crash/replay recovery cannot double-count them.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use pss_metrics::TenantSummary;

/// How a tenant wants the service to react when dual-price backpressure
/// bites (the shard's rolling price exceeds the tenant's threshold).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Bounce the submission back as a retryable
    /// [`IngressError::Backpressure`](pss_types::IngressError::Backpressure);
    /// the tenant keeps the job and may resubmit when the price falls.
    #[default]
    Defer,
    /// Drop the job at admission and book its value as lost — the service
    /// rejects on the tenant's behalf, without loading the scheduler.
    Reject,
}

/// A tenant's registration: identity, placement and admission contract.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Human-readable tenant name (reported in summaries).
    pub name: String,
    /// The shard whose queue this tenant's submissions enter.
    pub shard: usize,
    /// Maximum number of *outstanding* (queued, not yet ingested) jobs the
    /// tenant may have; further submissions are rejected with
    /// `IngressError::QuotaExceeded` until the worker drains some.
    pub quota: usize,
    /// Maximum rolling dual price the tenant is willing to pay; above it,
    /// backpressure engages regardless of per-job values.
    pub price_ceiling: f64,
    /// What backpressure does to this tenant's submissions.
    pub policy: BackpressurePolicy,
}

impl TenantSpec {
    /// A tenant on shard 0 with no quota, no price ceiling and the
    /// [`Defer`](BackpressurePolicy::Defer) policy.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            shard: 0,
            quota: usize::MAX,
            price_ceiling: f64::INFINITY,
            policy: BackpressurePolicy::Defer,
        }
    }

    /// Places the tenant on the given shard.
    pub fn on_shard(mut self, shard: usize) -> Self {
        self.shard = shard;
        self
    }

    /// Caps the tenant's outstanding (queued) jobs.
    pub fn with_quota(mut self, quota: usize) -> Self {
        self.quota = quota;
        self
    }

    /// Caps the rolling dual price the tenant will pay.
    pub fn with_price_ceiling(mut self, ceiling: f64) -> Self {
        self.price_ceiling = ceiling;
        self
    }

    /// Switches the tenant to the [`Reject`](BackpressurePolicy::Reject)
    /// backpressure policy.
    pub fn rejecting_on_price(mut self) -> Self {
        self.policy = BackpressurePolicy::Reject;
        self
    }
}

/// Live per-tenant accounting: the spec plus admission-side counters.
///
/// Updated lock-free from submitter threads; read by the daemon at
/// shutdown.  `outstanding` is the only counter the worker also touches
/// (decremented as envelopes are drained for ingestion) — it backs the
/// quota gate.
#[derive(Debug)]
pub(crate) struct TenantState {
    pub(crate) spec: TenantSpec,
    pub(crate) outstanding: AtomicUsize,
    pub(crate) submitted: AtomicU64,
    pub(crate) rejected_by_price: AtomicU64,
    pub(crate) rejected_invalid: AtomicU64,
    pub(crate) rejected_stale: AtomicU64,
    pub(crate) deferred: AtomicU64,
    pub(crate) queue_full: AtomicU64,
    pub(crate) quota_exceeded: AtomicU64,
    /// Value lost to price-based admission rejections, accumulated as f64
    /// bits under a CAS loop (no atomic f64 on stable).
    lost_value_bits: AtomicU64,
}

impl TenantState {
    pub(crate) fn new(spec: TenantSpec) -> Self {
        Self {
            spec,
            outstanding: AtomicUsize::new(0),
            submitted: AtomicU64::new(0),
            rejected_by_price: AtomicU64::new(0),
            rejected_invalid: AtomicU64::new(0),
            rejected_stale: AtomicU64::new(0),
            deferred: AtomicU64::new(0),
            queue_full: AtomicU64::new(0),
            quota_exceeded: AtomicU64::new(0),
            lost_value_bits: AtomicU64::new(0.0_f64.to_bits()),
        }
    }

    /// Adds `v` to the tenant's lost value (CAS loop over the f64 bits).
    pub(crate) fn add_lost_value(&self, v: f64) {
        let mut current = self.lost_value_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match self.lost_value_bits.compare_exchange_weak(
                current,
                next,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    pub(crate) fn lost_value(&self) -> f64 {
        f64::from_bits(self.lost_value_bits.load(Ordering::Acquire))
    }

    /// Folds the admission counters and the journal-derived scheduler
    /// outcomes into the reporting summary.
    pub(crate) fn summary(&self, accepted: u64, rejected_by_scheduler: u64) -> TenantSummary {
        TenantSummary {
            tenant: self.spec.name.clone(),
            submitted: self.submitted.load(Ordering::Acquire),
            accepted,
            rejected_by_scheduler,
            rejected_by_price: self.rejected_by_price.load(Ordering::Acquire),
            rejected_invalid: self.rejected_invalid.load(Ordering::Acquire),
            rejected_stale: self.rejected_stale.load(Ordering::Acquire),
            deferred: self.deferred.load(Ordering::Acquire),
            queue_full: self.queue_full.load(Ordering::Acquire),
            quota_exceeded: self.quota_exceeded.load(Ordering::Acquire),
            lost_value: self.lost_value(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builder_chains() {
        let spec = TenantSpec::new("batch")
            .on_shard(2)
            .with_quota(16)
            .with_price_ceiling(4.5)
            .rejecting_on_price();
        assert_eq!(spec.name, "batch");
        assert_eq!(spec.shard, 2);
        assert_eq!(spec.quota, 16);
        assert_eq!(spec.price_ceiling, 4.5);
        assert_eq!(spec.policy, BackpressurePolicy::Reject);

        let default = TenantSpec::new("t");
        assert_eq!(default.shard, 0);
        assert_eq!(default.quota, usize::MAX);
        assert!(default.price_ceiling.is_infinite());
        assert_eq!(default.policy, BackpressurePolicy::Defer);
    }

    #[test]
    fn lost_value_accumulates_under_contention() {
        let state = std::sync::Arc::new(TenantState::new(TenantSpec::new("t")));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let state = std::sync::Arc::clone(&state);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    state.add_lost_value(0.5);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(state.lost_value(), 2000.0);
    }

    #[test]
    fn summary_folds_counters() {
        let state = TenantState::new(TenantSpec::new("web"));
        state.submitted.store(10, Ordering::Release);
        state.deferred.store(3, Ordering::Release);
        state.add_lost_value(7.25);
        let s = state.summary(5, 2);
        assert_eq!(s.tenant, "web");
        assert_eq!(s.submitted, 10);
        assert_eq!(s.accepted, 5);
        assert_eq!(s.rejected_by_scheduler, 2);
        assert_eq!(s.deferred, 3);
        assert_eq!(s.lost_value, 7.25);
    }
}
