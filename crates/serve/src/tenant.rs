//! Tenant registration: the per-tenant admission contract (shard, quota,
//! price ceiling, backpressure policy) and the lock-free accounting the
//! daemon keeps for each tenant.
//!
//! A tenant declares *up front* how it wants the service to treat it when
//! the dual price rises: a [`BackpressurePolicy::Defer`] tenant gets its
//! submissions bounced back as retryable `IngressError::Backpressure` (it
//! keeps the job and the value), a [`BackpressurePolicy::Reject`] tenant
//! has the service drop the job at admission and book its value as lost —
//! the service-level analogue of the scheduler's own `Decision::reject`.
//! Either way the *signal* is the same: the shard's rolling EWMA of the
//! duals its scheduler emits, compared against the smaller of the tenant's
//! price ceiling and the job's declared value.
//!
//! All counters are lock-free reporting state updated on the submitters'
//! threads, held as `pss_check::sync` derived types ([`Counter`],
//! [`Gauge`], [`AtomicF64`]) — the facade fixes their memory ordering
//! (`Relaxed`: they publish nothing besides their own value) in one
//! audited place, and `pss-lint` keeps raw `Ordering::` tokens out of
//! this file.  The two scheduler-outcome counts (`accepted`,
//! `rejected_by_scheduler`) are *not* kept here — they are derived from
//! the shard journals at shutdown, so that crash/replay recovery cannot
//! double-count them.

use pss_check::sync::{AtomicF64, Counter, Gauge};
use pss_metrics::TenantSummary;

/// How a tenant wants the service to react when dual-price backpressure
/// bites (the shard's rolling price exceeds the tenant's threshold).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Bounce the submission back as a retryable
    /// [`IngressError::Backpressure`](pss_types::IngressError::Backpressure);
    /// the tenant keeps the job and may resubmit when the price falls.
    #[default]
    Defer,
    /// Drop the job at admission and book its value as lost — the service
    /// rejects on the tenant's behalf, without loading the scheduler.
    Reject,
}

/// A tenant's registration: identity, placement and admission contract.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Human-readable tenant name (reported in summaries).
    pub name: String,
    /// The shard whose queue this tenant's submissions enter.
    pub shard: usize,
    /// Maximum number of *outstanding* (queued, not yet ingested) jobs the
    /// tenant may have; further submissions are rejected with
    /// `IngressError::QuotaExceeded` until the worker drains some.
    pub quota: usize,
    /// Maximum rolling dual price the tenant is willing to pay; above it,
    /// backpressure engages regardless of per-job values.
    pub price_ceiling: f64,
    /// What backpressure does to this tenant's submissions.
    pub policy: BackpressurePolicy,
}

impl TenantSpec {
    /// A tenant on shard 0 with no quota, no price ceiling and the
    /// [`Defer`](BackpressurePolicy::Defer) policy.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            shard: 0,
            quota: usize::MAX,
            price_ceiling: f64::INFINITY,
            policy: BackpressurePolicy::Defer,
        }
    }

    /// Places the tenant on the given shard.
    pub fn on_shard(mut self, shard: usize) -> Self {
        self.shard = shard;
        self
    }

    /// Caps the tenant's outstanding (queued) jobs.
    pub fn with_quota(mut self, quota: usize) -> Self {
        self.quota = quota;
        self
    }

    /// Caps the rolling dual price the tenant will pay.
    pub fn with_price_ceiling(mut self, ceiling: f64) -> Self {
        self.price_ceiling = ceiling;
        self
    }

    /// Switches the tenant to the [`Reject`](BackpressurePolicy::Reject)
    /// backpressure policy.
    pub fn rejecting_on_price(mut self) -> Self {
        self.policy = BackpressurePolicy::Reject;
        self
    }
}

/// Live per-tenant accounting: the spec plus admission-side counters.
///
/// Updated lock-free from submitter threads; read by the daemon at
/// shutdown.  `outstanding` is the only counter the worker also touches
/// (decremented as envelopes are drained for ingestion) — it backs the
/// quota gate.
#[derive(Debug)]
pub(crate) struct TenantState {
    pub(crate) spec: TenantSpec,
    pub(crate) outstanding: Gauge,
    pub(crate) submitted: Counter,
    pub(crate) rejected_by_price: Counter,
    pub(crate) rejected_invalid: Counter,
    pub(crate) rejected_stale: Counter,
    pub(crate) deferred: Counter,
    pub(crate) queue_full: Counter,
    pub(crate) quota_exceeded: Counter,
    /// Value lost to price-based admission rejections (lock-free f64
    /// accumulator; see [`AtomicF64`]).
    lost_value: AtomicF64,
}

impl TenantState {
    pub(crate) fn new(spec: TenantSpec) -> Self {
        Self {
            spec,
            outstanding: Gauge::default(),
            submitted: Counter::default(),
            rejected_by_price: Counter::default(),
            rejected_invalid: Counter::default(),
            rejected_stale: Counter::default(),
            deferred: Counter::default(),
            queue_full: Counter::default(),
            quota_exceeded: Counter::default(),
            lost_value: AtomicF64::default(),
        }
    }

    /// Adds `v` to the tenant's lost value.
    pub(crate) fn add_lost_value(&self, v: f64) {
        self.lost_value.add(v);
    }

    pub(crate) fn lost_value(&self) -> f64 {
        self.lost_value.get()
    }

    /// Folds the admission counters and the journal-derived scheduler
    /// outcomes into the reporting summary.
    pub(crate) fn summary(&self, accepted: u64, rejected_by_scheduler: u64) -> TenantSummary {
        TenantSummary {
            tenant: self.spec.name.clone(),
            submitted: self.submitted.get(),
            accepted,
            rejected_by_scheduler,
            rejected_by_price: self.rejected_by_price.get(),
            rejected_invalid: self.rejected_invalid.get(),
            rejected_stale: self.rejected_stale.get(),
            deferred: self.deferred.get(),
            queue_full: self.queue_full.get(),
            quota_exceeded: self.quota_exceeded.get(),
            lost_value: self.lost_value(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builder_chains() {
        let spec = TenantSpec::new("batch")
            .on_shard(2)
            .with_quota(16)
            .with_price_ceiling(4.5)
            .rejecting_on_price();
        assert_eq!(spec.name, "batch");
        assert_eq!(spec.shard, 2);
        assert_eq!(spec.quota, 16);
        assert_eq!(spec.price_ceiling, 4.5);
        assert_eq!(spec.policy, BackpressurePolicy::Reject);

        let default = TenantSpec::new("t");
        assert_eq!(default.shard, 0);
        assert_eq!(default.quota, usize::MAX);
        assert!(default.price_ceiling.is_infinite());
        assert_eq!(default.policy, BackpressurePolicy::Defer);
    }

    #[test]
    fn lost_value_accumulates_under_contention() {
        let state = std::sync::Arc::new(TenantState::new(TenantSpec::new("t")));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let state = std::sync::Arc::clone(&state);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    state.add_lost_value(0.5);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(state.lost_value(), 2000.0);
    }

    #[test]
    fn summary_folds_counters() {
        let state = TenantState::new(TenantSpec::new("web"));
        state.submitted.add(10);
        state.deferred.add(3);
        state.add_lost_value(7.25);
        let s = state.summary(5, 2);
        assert_eq!(s.tenant, "web");
        assert_eq!(s.submitted, 10);
        assert_eq!(s.accepted, 5);
        assert_eq!(s.rejected_by_scheduler, 2);
        assert_eq!(s.deferred, 3);
        assert_eq!(s.lost_value, 7.25);
    }
}
