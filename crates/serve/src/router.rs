//! Routing *one* logical stream across the daemon's shards and
//! reassembling one logical answer.
//!
//! The daemon (PR 6) already runs `S` independent shard workers, but its
//! tenants are *placed*: each tenant's stream enters exactly one shard.
//! [`StreamRouter`] lifts that to a single logical stream: every arrival
//! is routed to a shard by a pluggable [`RoutePolicy`] — deterministic
//! hash of the submission sequence, round-robin, or **cheapest-price**
//! (the argmin of the shards' published rolling dual-price EWMAs, read
//! lock-free via [`Daemon::shard_price`], exact ties rotated by sequence
//! number so an all-zero cold start spreads like round-robin) —
//! and the per-shard outcomes are zipped back into one logical schedule
//! with [`pss_types::merge_frontiers`].
//!
//! Routing is a *pure function* of the submission sequence number and the
//! published prices, so a replay that observes the same price trajectory
//! routes identically.  Two drive modes make that useful:
//!
//! * [`StreamRouter::run_stepped`] — the determinism mode, borrowed from
//!   the chaos driver's wave-stepping: pause, wait for every worker to
//!   park at a quiescent boundary, route and queue one wave against the
//!   frozen price snapshot, resume, wait for the wave's decision events,
//!   repeat.  Batch structure, feed times, dense id assignment and
//!   routing are then pure functions of the workload — same workload,
//!   same configuration ⇒ bit-identical [`RoutedReport`] deterministic
//!   fields ([`routed_fields_equal`]), the replay gate of the router
//!   suites.
//! * [`StreamRouter::run_free`] — the throughput mode: workers run
//!   freely, the producer submits the stream as fast as admission allows
//!   (bounded retry on a full ring), and the report carries the
//!   wall-clock ingest rate.  Not bit-replayable (drain chunking follows
//!   real timing) — E17 uses it for arrivals/sec and the stepped mode for
//!   the replay gates.
//!
//! The single-threaded, daemon-free sibling (same policies, same merge,
//! same EWMA pricing) lives in `pss_sim::sharded` and hosts the
//! sharding-cost oracle.

use std::time::{Duration, Instant};

use pss_sim::RoutePolicy;
use pss_types::{merge_frontiers, Instance, JobId, Schedule, ScheduleError, ShardPiece};
use pss_types::{LogCheckpointable, OnlineAlgorithm};
use pss_workloads::{arrival_envelopes, SmallRng};

use crate::chaos::deterministic_fields_equal;
use crate::daemon::{Daemon, ServeConfig, Submission};
use crate::report::ServiceReport;
use crate::retry::RetryPolicy;
use crate::tenant::TenantSpec;

/// How long the stepped driver waits for any single worker transition.
const WAIT_LIMIT: Duration = Duration::from_secs(30);

/// Drives one logical arrival stream across an `S`-shard daemon under a
/// [`RoutePolicy`].  See the module docs for the two drive modes.
#[derive(Debug, Clone, Copy)]
pub struct StreamRouter {
    /// Number of shard workers `S`.
    pub shards: usize,
    /// The routing policy.
    pub policy: RoutePolicy,
    /// Machines per shard run (the merged logical schedule spans
    /// `shards · machines_per_shard` lanes).
    pub machines_per_shard: usize,
    /// Energy exponent α of every shard run.
    pub alpha: f64,
    /// Envelopes per stepped wave (each wave feeds as one batch per
    /// touched shard).
    pub wave_size: usize,
    /// Requested per-shard arrival-queue capacity (rounded up to a power
    /// of two by the queue itself).
    pub queue_capacity: usize,
    /// EWMA weight of each shard's rolling dual price.
    pub price_smoothing: f64,
}

impl Default for StreamRouter {
    fn default() -> Self {
        Self {
            shards: 1,
            policy: RoutePolicy::CheapestPrice,
            machines_per_shard: 1,
            alpha: 2.0,
            wave_size: 8,
            queue_capacity: 1024,
            price_smoothing: 0.1,
        }
    }
}

/// One logical submission's routing record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutedSubmission {
    /// The logical job id (also the envelope tag).
    pub job: JobId,
    /// The shard the policy picked.
    pub shard: usize,
    /// Whether the submission entered the shard's queue (`false`: the
    /// dual-price gate rejected it at admission — a terminal, deterministic
    /// outcome under the router's `Reject` backpressure policy).
    pub queued: bool,
}

/// What routing one logical stream produced: the routing log, the daemon's
/// per-shard report, and the merged logical schedule.
#[derive(Debug)]
pub struct RoutedReport {
    /// The policy that produced the assignment.
    pub policy: RoutePolicy,
    /// Machines per shard run.
    pub machines_per_shard: usize,
    /// One record per logical submission, in sequence order.
    pub submissions: Vec<RoutedSubmission>,
    /// The daemon's drained report (per-shard schedules, events, prices,
    /// tenant accounting).
    pub service: ServiceReport,
    /// The merged logical schedule: per-shard finished schedules zipped
    /// onto lane-offset machines with logical job ids
    /// ([`pss_types::merge_frontiers`]).
    pub merged: Schedule,
    /// Wall-clock seconds from the first submission to the drained
    /// shutdown.
    pub wall_secs: f64,
}

impl RoutedReport {
    /// The number of shards.
    pub fn shards(&self) -> usize {
        self.service.shards.len()
    }

    /// Logical submissions per wall-clock second, end to end (submission
    /// through drained shutdown) — the throughput E17 sweeps.
    pub fn arrivals_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.submissions.len() as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Total value of the logical jobs accepted by their shard's
    /// scheduler, under `instance`'s values.
    pub fn value_accepted(&self, instance: &Instance) -> f64 {
        self.service
            .shards
            .iter()
            .flat_map(|s| &s.events)
            .filter(|e| e.accepted)
            .map(|e| instance.job(JobId(e.tag as usize)).value)
            .sum()
    }

    /// Energy of the merged logical schedule — equal to the sum of the
    /// shard energies by the merge identity.
    pub fn merged_energy(&self, alpha: f64) -> f64 {
        self.merged.energy(alpha)
    }

    /// Queued arrivals per shard — the load-balance view.
    pub fn shard_loads(&self) -> Vec<usize> {
        let mut loads = vec![0usize; self.shards()];
        for sub in self.submissions.iter().filter(|s| s.queued) {
            loads[sub.shard] += 1;
        }
        loads
    }

    /// Max/mean ratio of the per-shard queued-arrival counts (1.0 is
    /// perfectly balanced; `S` means one shard took everything).
    pub fn load_imbalance(&self) -> f64 {
        let loads = self.shard_loads();
        let total: usize = loads.iter().sum();
        let max = loads.iter().copied().max().unwrap_or(0) as f64;
        let mean = total as f64 / self.shards().max(1) as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }

    /// The largest push-side peak queue depth across shards (the
    /// storm-proof bound, not the drain-point sample).
    pub fn peak_queue_depth(&self) -> usize {
        self.service
            .shards
            .iter()
            .map(|s| s.peak_queue_depth)
            .max()
            .unwrap_or(0)
    }
}

/// Whether two routed reports agree on every deterministic field: the
/// routing log (assignment + admission outcome per submission) and the
/// daemon's deterministic fields ([`deterministic_fields_equal`]), plus
/// the merged schedule.  Wall-clock throughput is excluded.
pub fn routed_fields_equal(a: &RoutedReport, b: &RoutedReport) -> bool {
    a.policy == b.policy
        && a.machines_per_shard == b.machines_per_shard
        && a.submissions == b.submissions
        && a.merged == b.merged
        && deterministic_fields_equal(&a.service, &b.service)
}

impl StreamRouter {
    fn config(&self, start_paused: bool) -> ServeConfig {
        ServeConfig {
            machines: self.machines_per_shard,
            alpha: self.alpha,
            shards: self.shards,
            queue_capacity: self.queue_capacity,
            // A wave (stepped) or a drained backlog chunk (free) coalesces
            // whole: one replan per burst under load.
            coalesce_window: f64::INFINITY,
            max_batch: self.queue_capacity.max(2).next_power_of_two(),
            price_smoothing: self.price_smoothing,
            stale_tolerance: f64::INFINITY,
            start_paused,
            ..ServeConfig::default()
        }
    }

    /// One routing tenant per shard, all on the `Reject` backpressure
    /// policy: a priced-out submission is a terminal, deterministic
    /// outcome (`Submission::RejectedByPrice`), never a `Defer` a stepped
    /// driver would spin on while the workers are paused.
    fn tenants(&self) -> Vec<TenantSpec> {
        (0..self.shards)
            .map(|s| {
                TenantSpec::new(format!("route-{s}"))
                    .on_shard(s)
                    .rejecting_on_price()
            })
            .collect()
    }

    /// Reads every shard's published price (lock-free `Acquire` loads) —
    /// the snapshot the policy routes against.
    fn prices<A>(daemon: &Daemon<A>, shards: usize) -> Vec<f64>
    where
        A: OnlineAlgorithm,
        A::Run: LogCheckpointable + Send + 'static,
    {
        (0..shards).map(|s| daemon.shard_price(s)).collect()
    }

    /// Drives the instance through the daemon wave-stepped — the
    /// bit-replayable mode.  Every wave is routed against a frozen price
    /// snapshot (all workers parked), queued, then fed as exactly one
    /// batch per touched shard.
    pub fn run_stepped<A>(
        &self,
        algorithm: A,
        instance: &Instance,
    ) -> Result<RoutedReport, ScheduleError>
    where
        A: OnlineAlgorithm,
        A::Run: LogCheckpointable + Send + 'static,
    {
        self.check()?;
        let (daemon, handles) = Daemon::spawn(algorithm, self.config(true), self.tenants())?;
        let envelopes = arrival_envelopes(instance);
        let started = Instant::now();
        let mut submissions = Vec::with_capacity(envelopes.len());
        let mut expected = vec![0usize; self.shards];
        let mut seq = 0u64;
        for wave in envelopes.chunks(self.wave_size.max(1)) {
            wait_idle_all(&daemon, self.shards)?;
            // All workers are parked: the price snapshot cannot move while
            // this wave routes, so the whole wave routes against one
            // consistent snapshot — routing is a pure function of the
            // sequence numbers and the published prices.
            let prices = Self::prices(&daemon, self.shards);
            for envelope in wave {
                let shard = self.policy.route(seq, &prices);
                seq += 1;
                let queued = match handles[shard].submit(*envelope) {
                    Ok(Submission::Queued { .. }) => {
                        expected[shard] += 1;
                        true
                    }
                    Ok(Submission::RejectedByPrice { .. }) => false,
                    other => {
                        return Err(ScheduleError::Internal(format!(
                            "routed submission ended unexpectedly: {other:?}"
                        )));
                    }
                };
                submissions.push(RoutedSubmission {
                    job: JobId(envelope.tag as usize),
                    shard,
                    queued,
                });
            }
            daemon.resume();
            for (s, &count) in expected.iter().enumerate() {
                wait_events(&daemon, s, count)?;
            }
            daemon.pause();
        }
        daemon.resume();
        let service = daemon.shutdown()?;
        let wall_secs = started.elapsed().as_secs_f64();
        Self::assemble(self, submissions, service, wall_secs)
    }

    /// Drives the instance through the daemon free-running — the
    /// throughput mode.  The producer submits the stream as fast as
    /// admission allows (bounded deterministic-jitter retry on a full
    /// ring) while the workers drain concurrently; `retry_seed` seeds the
    /// retry jitter.
    pub fn run_free<A>(
        &self,
        algorithm: A,
        instance: &Instance,
        retry_seed: u64,
    ) -> Result<RoutedReport, ScheduleError>
    where
        A: OnlineAlgorithm,
        A::Run: LogCheckpointable + Send + 'static,
    {
        self.check()?;
        let (daemon, handles) = Daemon::spawn(algorithm, self.config(false), self.tenants())?;
        let envelopes = arrival_envelopes(instance);
        let retry = RetryPolicy {
            max_attempts: 1000,
            base_delay: 5e-6,
            max_delay: 500e-6,
            jitter: 0.5,
        };
        let mut rng = SmallRng::seed_from_u64(retry_seed);
        let started = Instant::now();
        let mut submissions = Vec::with_capacity(envelopes.len());
        for (seq, envelope) in envelopes.iter().enumerate() {
            let prices = Self::prices(&daemon, self.shards);
            let shard = self.policy.route(seq as u64, &prices);
            let queued = match retry.submit(&handles[shard], *envelope, &mut rng) {
                Ok(Submission::Queued { .. }) => true,
                Ok(Submission::RejectedByPrice { .. }) => false,
                Err(e) => {
                    return Err(ScheduleError::Internal(format!(
                        "routed submission gave up under free-running ingest: {e}"
                    )));
                }
            };
            submissions.push(RoutedSubmission {
                job: JobId(envelope.tag as usize),
                shard,
                queued,
            });
        }
        let service = daemon.shutdown()?;
        let wall_secs = started.elapsed().as_secs_f64();
        Self::assemble(self, submissions, service, wall_secs)
    }

    fn check(&self) -> Result<(), ScheduleError> {
        if self.shards == 0 {
            return Err(ScheduleError::Internal(
                "a stream router needs at least one shard".into(),
            ));
        }
        Ok(())
    }

    /// Zips the drained service report into the logical outcome: each
    /// shard's events map its dense local ids back to the logical ids
    /// (the envelope tags), and the finished shard schedules merge onto
    /// lane-offset machines.
    fn assemble(
        &self,
        submissions: Vec<RoutedSubmission>,
        service: ServiceReport,
        wall_secs: f64,
    ) -> Result<RoutedReport, ScheduleError> {
        let mut maps: Vec<Vec<JobId>> = Vec::with_capacity(service.shards.len());
        for shard in &service.shards {
            let mut map = Vec::with_capacity(shard.events.len());
            for (i, event) in shard.events.iter().enumerate() {
                if event.job.index() != i {
                    return Err(ScheduleError::Internal(format!(
                        "shard {} event {i} carries dense id {} — feed order broken",
                        shard.shard, event.job
                    )));
                }
                map.push(JobId(event.tag as usize));
            }
            maps.push(map);
        }
        let pieces: Vec<ShardPiece<'_>> = service
            .shards
            .iter()
            .zip(&maps)
            .map(|(shard, jobs)| ShardPiece {
                schedule: &shard.schedule,
                jobs,
            })
            .collect();
        let merged = merge_frontiers(self.machines_per_shard, &pieces)?;
        Ok(RoutedReport {
            policy: self.policy,
            machines_per_shard: self.machines_per_shard,
            submissions,
            service,
            merged,
            wall_secs,
        })
    }
}

/// Waits for every shard's worker to park at a quiescent boundary while
/// the service is paused (each holds no drained-but-unfed arrivals).
fn wait_idle_all<A>(daemon: &Daemon<A>, shards: usize) -> Result<(), ScheduleError>
where
    A: OnlineAlgorithm,
    A::Run: LogCheckpointable + Send + 'static,
{
    let epochs: Vec<u64> = (0..shards).map(|s| daemon.shard_idle_epoch(s)).collect();
    let deadline = Instant::now() + WAIT_LIMIT;
    for (s, &epoch) in epochs.iter().enumerate() {
        while daemon.shard_idle_epoch(s) == epoch {
            if Instant::now() > deadline {
                return Err(ScheduleError::Internal(format!(
                    "stream router timed out waiting for shard {s} to park"
                )));
            }
            std::thread::yield_now();
        }
    }
    Ok(())
}

/// Waits for the shard to have journalled `expected` decision events.
fn wait_events<A>(daemon: &Daemon<A>, shard: usize, expected: usize) -> Result<(), ScheduleError>
where
    A: OnlineAlgorithm,
    A::Run: LogCheckpointable + Send + 'static,
{
    let deadline = Instant::now() + WAIT_LIMIT;
    while daemon.shard_event_count(shard) < expected {
        if Instant::now() > deadline {
            return Err(ScheduleError::Internal(format!(
                "stream router timed out waiting for {expected} events on shard {shard}"
            )));
        }
        std::thread::yield_now();
    }
    Ok(())
}
