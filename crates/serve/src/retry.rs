//! Producer-side retry: bounded exponential backoff with deterministic
//! jitter over the typed [`IngressError`] taxonomy.
//!
//! The daemon's ingress is total — every failure is a typed error whose
//! [`IngressError::is_retryable`] contract says whether backing off can
//! help (a full queue drains, a quota frees, a price falls) or cannot (an
//! invalid envelope stays invalid).  [`RetryPolicy`] turns that contract
//! into a driver: retryable errors are retried with exponentially growing,
//! jittered, capped delays until the submission lands or the attempt
//! budget is spent; non-retryable errors give up immediately.  Every
//! outcome is typed ([`RetryError`]) — a producer loop never spins blind.
//!
//! Jitter is drawn from a caller-owned [`SmallRng`], so a retry schedule
//! is exactly as replayable as the fault plan that provoked it: same seed,
//! same backoff sequence.

use std::time::Duration;

use pss_types::{IngressError, JobEnvelope};
use pss_workloads::SmallRng;

use crate::daemon::{Submission, TenantHandle};

/// Bounded exponential backoff with deterministic jitter.
///
/// Attempt `k` (0-based) sleeps `base_delay · 2^k`, capped at `max_delay`,
/// then scaled by a jitter factor uniform in `[1 − jitter, 1]` — full
/// determinism comes from the caller's [`SmallRng`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total submission attempts (the first try counts); at least 1.
    pub max_attempts: usize,
    /// Delay before the first retry, in seconds.
    pub base_delay: f64,
    /// Hard cap on any single delay, in seconds.
    pub max_delay: f64,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a factor
    /// uniform in `[1 − jitter, 1]`.  `0` disables jitter.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 8,
            base_delay: 100e-6,
            max_delay: 10e-3,
            jitter: 0.5,
        }
    }
}

/// Why a retried submission gave up.
#[derive(Debug, Clone, PartialEq)]
pub enum RetryError {
    /// Every attempt failed with a retryable error; `last` is the final
    /// bounce.  The typed give-up of a storm that outlasts the budget.
    Exhausted {
        /// The error of the last attempt.
        last: IngressError,
        /// Attempts spent (equals the policy's `max_attempts`).
        attempts: usize,
    },
    /// A non-retryable error — retrying cannot help, so the policy stops
    /// at once rather than burning the budget.
    Fatal {
        /// The non-retryable error.
        error: IngressError,
        /// Attempts spent when it surfaced.
        attempts: usize,
    },
}

impl RetryError {
    /// The underlying ingress error.
    pub fn error(&self) -> &IngressError {
        match self {
            RetryError::Exhausted { last, .. } => last,
            RetryError::Fatal { error, .. } => error,
        }
    }

    /// Attempts spent before giving up.
    pub fn attempts(&self) -> usize {
        match self {
            RetryError::Exhausted { attempts, .. } | RetryError::Fatal { attempts, .. } => {
                *attempts
            }
        }
    }
}

impl std::fmt::Display for RetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetryError::Exhausted { last, attempts } => {
                write!(f, "gave up after {attempts} retryable attempt(s): {last}")
            }
            RetryError::Fatal { error, attempts } => {
                write!(f, "non-retryable after {attempts} attempt(s): {error}")
            }
        }
    }
}

impl RetryPolicy {
    /// The jittered delay before retry number `attempt` (0-based: the
    /// delay after the first failed attempt is `backoff_secs(0, ..)`).
    /// Always finite, nonnegative, and at most `max_delay` — bounded
    /// regardless of how large `attempt` grows.
    pub fn backoff_secs(&self, attempt: usize, rng: &mut SmallRng) -> f64 {
        let base = self.base_delay.max(0.0);
        // Saturating power of two: past ~2^60 the cap has long since won.
        let factor = if attempt >= 60 {
            f64::from(1u32 << 30) * f64::from(1u32 << 30)
        } else {
            (1u64 << attempt) as f64
        };
        let raw = (base * factor).min(self.max_delay.max(0.0));
        let jitter = self.jitter.clamp(0.0, 1.0);
        raw * (1.0 - jitter * rng.next_f64())
    }

    /// The backoff for retry `attempt` after a specific bounce: price
    /// deferrals ([`IngressError::Backpressure`]) carry the observed shard
    /// price, so the delay is scaled by how far the price overshot the
    /// producer's threshold ([`IngressError::price_overshoot`], clamped to
    /// at most 8x) — a 3x-overpriced shard is retried 3x more slowly
    /// instead of blindly.  Other retryable errors keep the plain
    /// schedule.  Still bounded: at most `8 · max_delay`.
    pub fn backoff_secs_for(
        &self,
        attempt: usize,
        error: &IngressError,
        rng: &mut SmallRng,
    ) -> f64 {
        let scale = error.price_overshoot().map_or(1.0, |o| o.clamp(1.0, 8.0));
        self.backoff_secs(attempt, rng) * scale
    }

    /// Drives one envelope to completion or typed give-up: submits through
    /// `handle`, sleeping the jittered backoff between retryable failures.
    /// Returns the successful [`Submission`] (including a policy-conforming
    /// [`Submission::RejectedByPrice`]), or the typed [`RetryError`].
    /// Terminates after at most `max_attempts` submissions.  Price
    /// deferrals back off proportionally to the observed overshoot — see
    /// [`backoff_secs_for`](Self::backoff_secs_for).
    pub fn submit(
        &self,
        handle: &TenantHandle,
        envelope: JobEnvelope,
        rng: &mut SmallRng,
    ) -> Result<Submission, RetryError> {
        let budget = self.max_attempts.max(1);
        for attempt in 0..budget {
            match handle.submit(envelope) {
                Ok(outcome) => return Ok(outcome),
                Err(e) if !e.is_retryable() => {
                    return Err(RetryError::Fatal {
                        error: e,
                        attempts: attempt + 1,
                    });
                }
                Err(e) => {
                    if attempt + 1 == budget {
                        return Err(RetryError::Exhausted {
                            last: e,
                            attempts: budget,
                        });
                    }
                    let delay = self.backoff_secs_for(attempt, &e, rng);
                    if delay > 0.0 {
                        std::thread::sleep(Duration::from_secs_f64(delay));
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
        }
        // Unreachable: the loop always returns by the last attempt; typed
        // fallback keeps the function total without a panic path.
        Err(RetryError::Exhausted {
            last: IngressError::ShuttingDown,
            attempts: budget,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_then_caps_and_jitter_shrinks_only() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_delay: 1e-4,
            max_delay: 1e-3,
            jitter: 0.0,
            // no jitter: the schedule is the pure capped doubling
        };
        let mut rng = SmallRng::seed_from_u64(1);
        let d: Vec<f64> = (0..8).map(|k| policy.backoff_secs(k, &mut rng)).collect();
        assert_eq!(d[0], 1e-4); // pss-lint: allow(float-eq) — exact doubling, no rounding
        assert_eq!(d[1], 2e-4); // pss-lint: allow(float-eq) — exact doubling, no rounding
        assert_eq!(d[2], 4e-4); // pss-lint: allow(float-eq) — exact doubling, no rounding
        for dk in &d[4..8] {
            assert_eq!(*dk, 1e-3); // pss-lint: allow(float-eq) — capped exactly
        }
        // With jitter, delays only shrink, never exceed the cap, and the
        // sequence is reproducible from the seed.
        let jittered = RetryPolicy {
            jitter: 0.5,
            ..policy
        };
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for k in 0..20 {
            let da = jittered.backoff_secs(k, &mut a);
            assert!((0.0..=1e-3).contains(&da));
            assert_eq!(da.to_bits(), jittered.backoff_secs(k, &mut b).to_bits());
        }
        // Huge attempt numbers stay bounded (no overflow, no inf).
        let mut rng = SmallRng::seed_from_u64(2);
        let far = policy.backoff_secs(usize::MAX, &mut rng);
        assert!(far.is_finite() && far <= 1e-3);
    }

    #[test]
    fn price_deferrals_back_off_proportionally() {
        use pss_types::TenantId;
        let policy = RetryPolicy {
            max_attempts: 4,
            base_delay: 1e-4,
            max_delay: 1e-3,
            jitter: 0.0,
        };
        let deferred = |price: f64| IngressError::Backpressure {
            tenant: TenantId(0),
            price,
            threshold: 1.0,
        };
        let mut rng = SmallRng::seed_from_u64(3);
        // 3x over the threshold ⇒ exactly 3x the plain schedule.
        let plain = policy.backoff_secs(0, &mut rng);
        let scaled = policy.backoff_secs_for(0, &deferred(3.0), &mut rng);
        assert_eq!(scaled, 3.0 * plain); // pss-lint: allow(float-eq) — exact scale, no rounding
                                         // The proportional scale is clamped: a 100x overshoot waits 8x,
                                         // not 100x, so one absurd price cannot park a producer forever.
        let capped = policy.backoff_secs_for(1, &deferred(100.0), &mut rng);
        assert_eq!(capped, 8.0 * policy.backoff_secs(1, &mut rng)); // pss-lint: allow(float-eq) — exact scale
                                                                    // Non-price errors keep the plain schedule.
        let other = IngressError::QueueFull {
            shard: 0,
            capacity: 4,
        };
        let a = policy.backoff_secs_for(2, &other, &mut rng);
        assert_eq!(a, policy.backoff_secs(2, &mut rng)); // pss-lint: allow(float-eq) — identical schedule
    }
}
