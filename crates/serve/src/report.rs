//! What a service run produces: the per-event decision records, per-shard
//! run artefacts and the whole-service report, plus its projection onto
//! the flat [`pss_metrics::ServiceSummary`] for JSON export.
//!
//! The report is deliberately *heavyweight* — it keeps every decision
//! event and each shard's finished [`Schedule`] so tests can compare a
//! daemon run bit-for-bit against an offline replay (`StreamingSimulation`)
//! and against a crash-recovered run; the chaos oracle
//! ([`crate::chaos::deterministic_fields_equal`]) compares exactly the
//! deterministic subset of these fields between a fault-free and a
//! fault-injected run.  Operators exporting to dashboards call
//! [`ServiceReport::summary`] and ship the JSON.

use pss_metrics::{DrainSummary, ServiceSummary, ShardSummary, TenantSummary};
use pss_sim::nearest_rank;
use pss_types::{Instance, InstanceError, Job, JobId, Schedule, TenantId};

/// One ingestion decision: which envelope became which dense-id job on
/// which shard, and what the scheduler said.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedEvent {
    /// The shard that ingested the job.
    pub shard: usize,
    /// The submitting tenant.
    pub tenant: TenantId,
    /// The tenant's correlation tag from the envelope.
    pub tag: u64,
    /// The dense shard-local id the service assigned at feed time.
    pub job: JobId,
    /// The envelope's release time.
    pub release: f64,
    /// The time the job was fed to the scheduler (`max(release in burst,
    /// shard watermark)` — never before `release`).
    pub feed_time: f64,
    /// Index of the ingestion batch (shard-local) this job rode in.
    pub batch: usize,
    /// Whether the scheduling algorithm accepted the job.
    pub accepted: bool,
    /// Whether the job expired in the queue: the shard's watermark overtook
    /// its deadline before it could be fed, so the service synthesised the
    /// rejection (`accepted == false`, `dual == value`) without showing the
    /// job to the scheduler — the model forbids arrivals past the deadline.
    pub expired: bool,
    /// The decision's dual value (λ_j if accepted, the lost value v_j if
    /// rejected — the raw material of the backpressure signal).
    pub dual: f64,
}

/// Everything one shard's worker produced over the run.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// The jobs actually fed, in feed order (dense ids `0..` — each
    /// shard's fed stream is a valid instance on its own).  Releases are
    /// as the scheduler saw them: a late live release is clamped up to the
    /// shard's release floor (the online model requires nondecreasing
    /// releases); the matching [`ServedEvent`] keeps the envelope's
    /// original release.
    pub jobs: Vec<Job>,
    /// One record per fed job, in feed order.
    pub events: Vec<ServedEvent>,
    /// Ingestion batches the worker made (burst coalescing makes this ≤
    /// `events.len()`).
    pub batches: usize,
    /// The finished schedule of the shard's run.
    pub schedule: Schedule,
    /// The rolling dual price after each ingestion batch.
    pub price_trace: Vec<f64>,
    /// The rolling dual price when the run ended.
    pub final_price: f64,
    /// Queue depth observed at each drain point.
    pub depth_samples: Vec<usize>,
    /// True maximum queue depth ever reached, counted at every push (not
    /// just at drain points), so transient storms that build and drain
    /// between two drains are still visible.  Always ≥
    /// [`max_queue_depth`](Self::max_queue_depth).
    pub peak_queue_depth: usize,
    /// Checkpoints captured over the run.
    pub checkpoints: usize,
    /// Hand-offs (worker migrations) the shard went through.
    pub handoffs: usize,
    /// Wall-clock drain latency at shutdown, in seconds.
    pub drain_secs: f64,
}

impl ShardReport {
    /// Jobs the scheduler accepted.
    pub fn accepted(&self) -> usize {
        self.events.iter().filter(|e| e.accepted).count()
    }

    /// Jobs the scheduler rejected (ordinary `Decision`-level rejections),
    /// including the service-synthesised rejections of jobs that expired in
    /// the queue.
    pub fn rejected(&self) -> usize {
        self.events.len() - self.accepted()
    }

    /// Jobs that expired in the queue (rejected at feed time without being
    /// shown to the scheduler) — a subset of [`rejected`](Self::rejected).
    pub fn expired(&self) -> usize {
        self.events.iter().filter(|e| e.expired).count()
    }

    /// The largest queue depth observed at a drain point.  The push-side
    /// [`peak_queue_depth`](Self::peak_queue_depth) bounds this from above.
    pub fn max_queue_depth(&self) -> usize {
        self.depth_samples.iter().copied().max().unwrap_or(0)
    }

    /// Nearest-rank percentile of the queue depth samples.
    pub fn queue_depth_percentile(&self, p: f64) -> f64 {
        let mut sorted: Vec<f64> = self.depth_samples.iter().map(|&d| d as f64).collect();
        sorted.sort_by(f64::total_cmp);
        nearest_rank(&sorted, p)
    }

    /// Reassembles the shard's fed stream as a standalone [`Instance`]
    /// (dense ids in feed order), for offline cross-checks of the shard's
    /// schedule.
    pub fn instance(&self, machines: usize, alpha: f64) -> Result<Instance, InstanceError> {
        Instance::from_jobs(machines, alpha, self.jobs.clone())
    }

    fn summary(&self) -> ShardSummary {
        ShardSummary {
            shard: self.shard as u64,
            arrivals: self.events.len() as u64,
            batches: self.batches as u64,
            max_queue_depth: self.max_queue_depth() as u64,
            peak_queue_depth: self.peak_queue_depth as u64,
            queue_depth_p99: self.queue_depth_percentile(99.0),
            dual_price_trace: self.price_trace.clone(),
            final_price: self.final_price,
            checkpoints: self.checkpoints as u64,
            handoffs: self.handoffs as u64,
        }
    }
}

/// The complete outcome of a service run, assembled at shutdown.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Name of the scheduling algorithm the daemon ran.
    pub algorithm: String,
    /// Machines per shard run.
    pub machines: usize,
    /// Energy exponent α.
    pub alpha: f64,
    /// Per-shard artefacts, in shard order.
    pub shards: Vec<ShardReport>,
    /// Per-tenant admission accounting, in registry order.
    pub tenants: Vec<TenantSummary>,
    /// Drain / hand-off latencies of the lifecycle protocol.
    pub drain: DrainSummary,
}

impl ServiceReport {
    /// Total jobs fed across all shards.
    pub fn total_arrivals(&self) -> usize {
        self.shards.iter().map(|s| s.events.len()).sum()
    }

    /// Total jobs accepted across all shards.
    pub fn total_accepted(&self) -> usize {
        self.shards.iter().map(|s| s.accepted()).sum()
    }

    /// Projects the report onto the flat, JSON-serialisable
    /// [`ServiceSummary`].
    pub fn summary(&self) -> ServiceSummary {
        ServiceSummary {
            algorithm: self.algorithm.clone(),
            tenants: self.tenants.clone(),
            shards: self.shards.iter().map(ShardReport::summary).collect(),
            drain: self.drain.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(job: usize, accepted: bool, dual: f64) -> ServedEvent {
        ServedEvent {
            shard: 0,
            tenant: TenantId(0),
            tag: job as u64,
            job: JobId(job),
            release: job as f64,
            feed_time: job as f64,
            batch: job,
            accepted,
            expired: false,
            dual,
        }
    }

    fn shard_report() -> ShardReport {
        ShardReport {
            shard: 0,
            jobs: vec![
                Job::new(0, 0.0, 1.0, 0.5, 1.0),
                Job::new(1, 1.0, 2.0, 0.5, 1.0),
                Job::new(2, 2.0, 3.0, 0.5, 1.0),
            ],
            events: vec![
                event(0, true, 0.5),
                event(1, false, 1.0),
                event(2, true, 0.25),
            ],
            batches: 3,
            schedule: Schedule::default(),
            price_trace: vec![0.5, 0.75, 0.5],
            final_price: 0.5,
            depth_samples: vec![3, 1, 7, 2],
            peak_queue_depth: 9,
            checkpoints: 1,
            handoffs: 0,
            drain_secs: 0.001,
        }
    }

    #[test]
    fn shard_report_counts_and_percentiles() {
        let r = shard_report();
        assert_eq!(r.accepted(), 2);
        assert_eq!(r.rejected(), 1);
        assert_eq!(r.max_queue_depth(), 7);
        assert_eq!(r.queue_depth_percentile(50.0), 2.0);
        assert_eq!(r.queue_depth_percentile(100.0), 7.0);
    }

    #[test]
    fn shard_stream_reassembles_as_an_instance() {
        let r = shard_report();
        let inst = r.instance(1, 2.0).unwrap();
        assert_eq!(inst.len(), 3);
        assert_eq!(inst.machines, 1);
        // Feed order is arrival order: ids are already dense and sorted.
        assert_eq!(inst.arrival_order(), vec![JobId(0), JobId(1), JobId(2)]);
    }

    #[test]
    fn summary_projection_round_trips_through_json() {
        let report = ServiceReport {
            algorithm: "CLL".into(),
            machines: 1,
            alpha: 2.0,
            shards: vec![shard_report()],
            tenants: vec![TenantSummary {
                tenant: "web".into(),
                submitted: 3,
                accepted: 2,
                rejected_by_scheduler: 1,
                rejected_by_price: 0,
                rejected_invalid: 0,
                rejected_stale: 0,
                deferred: 0,
                queue_full: 0,
                quota_exceeded: 0,
                lost_value: 0.0,
            }],
            drain: DrainSummary {
                drain_secs: vec![0.001],
                handoff_secs: vec![],
            },
        };
        assert_eq!(report.total_arrivals(), 3);
        assert_eq!(report.total_accepted(), 2);
        let summary = report.summary();
        let json = summary.to_json();
        let back = ServiceSummary::from_json(&json).unwrap();
        assert_eq!(back, summary);
        assert_eq!(back.shards[0].max_queue_depth, 7);
        assert_eq!(back.shards[0].peak_queue_depth, 9);
    }
}
