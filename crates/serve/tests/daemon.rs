//! End-to-end tests of the ingestion daemon: total ingress (one typed
//! error path per violation class), multi-tenant admission accounting,
//! dual-price backpressure, and the checkpointed crash / hand-off
//! lifecycle with bit-identical recovery.

use std::time::{Duration, Instant};

use pss_baselines::CllScheduler;
use pss_core::PdScheduler;
use pss_serve::{Daemon, ServeConfig, ServiceReport, Submission, TenantSpec};
use pss_types::{IngressError, JobEnvelope, TenantId};

/// A valid envelope for tenant 0 with the given tag and release.
fn env(tag: u64, release: f64) -> JobEnvelope {
    JobEnvelope::new(TenantId(0), tag, release, release + 1.0, 0.2, 1.0)
}

/// Polls `probe` until it returns true or the deadline passes.
fn wait_for(what: &str, mut probe: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !probe() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::yield_now();
    }
}

/// Single-tenant config with everything deterministic and roomy.
fn solo_config() -> ServeConfig {
    ServeConfig {
        queue_capacity: 1024,
        start_paused: true,
        ..ServeConfig::default()
    }
}

#[test]
fn unknown_tenant_is_a_typed_rejection() {
    let (daemon, _handles) =
        Daemon::spawn(CllScheduler, solo_config(), vec![TenantSpec::new("only")]).unwrap();
    match daemon.handle(TenantId(7)) {
        Err(IngressError::UnknownTenant(t)) => assert_eq!(t, TenantId(7)),
        other => panic!("expected UnknownTenant, got {other:?}"),
    }
    // A registered tenant resolves, and the clone submits fine.
    let handle = daemon.handle(TenantId(0)).unwrap();
    assert!(matches!(
        handle.submit(env(0, 0.0)),
        Ok(Submission::Queued { shard: 0 })
    ));
    daemon.resume();
    let report = daemon.shutdown().unwrap();
    assert_eq!(report.total_arrivals(), 1);
}

#[test]
fn invalid_envelopes_are_rejected_at_the_boundary() {
    let (daemon, handles) =
        Daemon::spawn(CllScheduler, solo_config(), vec![TenantSpec::new("t")]).unwrap();
    let mut bad = env(1, 0.0);
    bad.work = f64::NAN;
    match handles[0].submit(bad) {
        Err(IngressError::InvalidJob { tag, .. }) => assert_eq!(tag, 1),
        other => panic!("expected InvalidJob, got {other:?}"),
    }
    let mut bad = env(2, 0.0);
    bad.deadline = bad.release; // empty window
    assert!(matches!(
        handles[0].submit(bad),
        Err(IngressError::InvalidJob { .. })
    ));
    daemon.resume();
    let report = daemon.shutdown().unwrap();
    // Nothing reached the scheduler; the rejections are accounted.
    assert_eq!(report.total_arrivals(), 0);
    assert_eq!(report.tenants[0].rejected_invalid, 2);
    assert_eq!(report.tenants[0].submitted, 2);
}

#[test]
fn stale_submissions_are_rejected_against_the_watermark() {
    let config = ServeConfig {
        stale_tolerance: 0.5,
        ..ServeConfig::default()
    };
    let (daemon, handles) =
        Daemon::spawn(CllScheduler, config, vec![TenantSpec::new("t")]).unwrap();
    handles[0].submit(env(0, 10.0)).unwrap();
    wait_for("the watermark to reach 10", || {
        daemon.shard_watermark(0) == 10.0
    });
    // 9.6 is within tolerance of the watermark: admitted (fed at 10).
    assert!(matches!(
        handles[0].submit(env(1, 9.6)),
        Ok(Submission::Queued { .. })
    ));
    // 5.0 is far behind: typed stale rejection.
    match handles[0].submit(env(2, 5.0)) {
        Err(IngressError::Stale {
            release,
            watermark,
            tolerance,
            ..
        }) => {
            assert_eq!(release, 5.0);
            assert_eq!(watermark, 10.0);
            assert_eq!(tolerance, 0.5);
        }
        other => panic!("expected Stale, got {other:?}"),
    }
    let report = daemon.shutdown().unwrap();
    assert_eq!(report.total_arrivals(), 2);
    assert_eq!(report.tenants[0].rejected_stale, 1);
    // The late job was fed at the watermark, never before its release.
    for event in &report.shards[0].events {
        assert!(event.feed_time >= event.release);
    }
}

#[test]
fn dead_on_arrival_submissions_are_rejected_as_expired() {
    // Default config: infinite stale tolerance, so lateness alone never
    // rejects — but a deadline behind the watermark always does.
    let (daemon, handles) = Daemon::spawn(
        CllScheduler,
        ServeConfig::default(),
        vec![TenantSpec::new("t")],
    )
    .unwrap();
    handles[0].submit(env(0, 10.0)).unwrap();
    wait_for("the watermark to reach 10", || {
        daemon.shard_watermark(0) == 10.0
    });
    assert_eq!(handles[0].watermark(), 10.0);
    // Release within tolerance (infinite), but the deadline has passed.
    match handles[0].submit(JobEnvelope::new(TenantId(0), 1, 9.8, 10.0, 0.2, 1.0)) {
        Err(IngressError::Expired {
            deadline,
            watermark,
            ..
        }) => {
            assert_eq!(deadline, 10.0);
            assert_eq!(watermark, 10.0);
        }
        other => panic!("expected Expired, got {other:?}"),
    }
    let report = daemon.shutdown().unwrap();
    assert_eq!(report.total_arrivals(), 1);
    assert_eq!(report.tenants[0].rejected_stale, 1);
}

#[test]
fn jobs_expiring_in_the_queue_are_rejected_at_feed_time() {
    // Pre-queue on a paused daemon: both envelopes are admitted against a
    // -inf watermark, then the first burst drags the watermark past the
    // second job's deadline — it must be rejected at feed time without
    // ever being shown to the scheduler (which would reject the whole
    // batch as a contract violation).
    let (daemon, handles) =
        Daemon::spawn(CllScheduler, solo_config(), vec![TenantSpec::new("t")]).unwrap();
    handles[0].submit(env(0, 10.0)).unwrap();
    handles[0]
        .submit(JobEnvelope::new(TenantId(0), 1, 0.5, 1.5, 0.2, 1.0))
        .unwrap();
    daemon.resume();
    let report = daemon.shutdown().unwrap();
    let shard = &report.shards[0];
    assert_eq!(shard.events.len(), 2);
    assert_eq!(shard.expired(), 1);
    let late = shard.events.iter().find(|e| e.tag == 1).unwrap();
    assert!(late.expired && !late.accepted);
    assert_eq!(late.feed_time, 10.0);
    // The synthesised decision is the one the model implies: the job's
    // value is lost, and it feeds the dual-price signal like any rejection.
    assert_eq!(late.dual, 1.0);
    let on_time = shard.events.iter().find(|e| e.tag == 0).unwrap();
    assert!(on_time.accepted && !on_time.expired);
    // Accounting: the expiry is a Decision-level rejection, not an
    // admission failure.
    assert_eq!(report.tenants[0].submitted, 2);
    assert_eq!(report.tenants[0].accepted, 1);
    assert_eq!(report.tenants[0].rejected_by_scheduler, 1);
    assert_eq!(report.tenants[0].rejected_stale, 0);
}

/// A multi-tenant queue interleaves producers' releases out of order; the
/// worker clamps a late live release up to the release floor so runs that
/// key on release order (PD's partition refinement) are never poisoned.
#[test]
fn out_of_order_releases_are_clamped_to_the_release_floor() {
    let (daemon, handles) = Daemon::spawn(
        PdScheduler::coarse(),
        solo_config(),
        vec![TenantSpec::new("t")],
    )
    .unwrap();
    // Release 10 queued first, then a straggler with release 0.5 but a
    // deadline far past the watermark: it stays live and must be fed.
    handles[0].submit(env(0, 10.0)).unwrap();
    handles[0]
        .submit(JobEnvelope::new(TenantId(0), 1, 0.5, 60.0, 0.2, 1.0))
        .unwrap();
    daemon.resume();
    let report = daemon.shutdown().unwrap();
    let shard = &report.shards[0];
    assert_eq!(shard.events.len(), 2);
    assert!(shard.events.iter().all(|e| !e.expired));
    // The straggler was fed with its release clamped to the floor (10.0);
    // the event keeps the envelope's original release for the record.
    assert_eq!(shard.jobs[1].release, 10.0);
    assert_eq!(shard.events[1].release, 0.5);
    // The run survived and its schedule validates against the fed stream.
    let instance = shard.instance(report.machines, report.alpha).unwrap();
    pss_core::prelude::validate_schedule(&instance, &shard.schedule).unwrap();
}

#[test]
fn full_queues_bounce_submissions() {
    let config = ServeConfig {
        queue_capacity: 4,
        ..solo_config()
    };
    let (daemon, handles) =
        Daemon::spawn(CllScheduler, config, vec![TenantSpec::new("t")]).unwrap();
    for tag in 0..4 {
        handles[0].submit(env(tag, tag as f64)).unwrap();
    }
    match handles[0].submit(env(4, 4.0)) {
        Err(
            e @ IngressError::QueueFull {
                shard: 0,
                capacity: 4,
            },
        ) => assert!(e.is_retryable()),
        other => panic!("expected QueueFull, got {other:?}"),
    }
    daemon.resume();
    let report = daemon.shutdown().unwrap();
    assert_eq!(report.total_arrivals(), 4);
    assert_eq!(report.tenants[0].queue_full, 1);
    assert!(report.shards[0].max_queue_depth() <= 4);
}

#[test]
fn quotas_cap_outstanding_jobs_and_release_on_drain() {
    let config = ServeConfig {
        queue_capacity: 64,
        ..solo_config()
    };
    let spec = TenantSpec::new("t").with_quota(3);
    let (daemon, handles) = Daemon::spawn(CllScheduler, config, vec![spec]).unwrap();
    for tag in 0..3 {
        handles[0].submit(env(tag, 0.1 * tag as f64)).unwrap();
    }
    match handles[0].submit(env(3, 0.3)) {
        Err(e @ IngressError::QuotaExceeded { limit: 3, .. }) => assert!(e.is_retryable()),
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }
    // Draining frees quota: once the worker ingests the backlog the same
    // submission goes through.
    daemon.resume();
    wait_for("the queue to drain", || daemon.queue_depth(0) == 0);
    wait_for("quota to free up", || {
        handles[0].submit(env(4, 0.4)).is_ok()
    });
    let report = daemon.shutdown().unwrap();
    assert_eq!(report.tenants[0].quota_exceeded, 1);
    assert!(report.total_arrivals() >= 4);
}

/// Drives the shard price up by feeding jobs the scheduler must reject
/// (huge density, tiny value relative to the energy needed), then checks
/// both backpressure policies.  An all-rejected batch is not a pricing
/// event (see the EWMA guard in `feed_batch`), so the hopeless job rides
/// in one coalesced batch behind an accepted anchor.
#[test]
fn dual_price_backpressure_defers_and_rejects() {
    let config = ServeConfig {
        price_smoothing: 1.0, // price = the batch's last decision dual
        coalesce_window: 0.5, // anchor + hopeless coalesce into one batch
        start_paused: true,
        ..ServeConfig::default()
    };
    let tenants = vec![
        TenantSpec::new("defer"),
        TenantSpec::new("reject").rejecting_on_price(),
    ];
    let (daemon, handles) = Daemon::spawn(CllScheduler, config, tenants).unwrap();
    // The anchor is trivially profitable (speed 0.2, energy ≪ value), so
    // its acceptance makes the batch a pricing event.  Work 50 in a window
    // of 0.1 needs speed 500: energy ≈ 500² · 0.1 ≫ value 8, so CLL
    // rejects the hopeless job and the batch's last dual is the value 8.
    let anchor = JobEnvelope::new(TenantId(0), 98, 0.0, 1.0, 0.2, 1.0);
    let hopeless = JobEnvelope::new(TenantId(0), 99, 0.0, 0.1, 50.0, 8.0);
    handles[0].submit(anchor).unwrap();
    handles[0].submit(hopeless).unwrap();
    daemon.resume();
    wait_for("the dual price to spike", || daemon.shard_price(0) >= 8.0);

    // A Defer-policy tenant gets a retryable Backpressure error...
    let cheap = JobEnvelope::new(TenantId(0), 1, 1.0, 2.0, 0.2, 1.0);
    match handles[0].submit(cheap) {
        Err(
            e @ IngressError::Backpressure {
                price, threshold, ..
            },
        ) => {
            assert!(e.is_retryable());
            assert!(price >= 8.0);
            assert_eq!(threshold, 1.0); // min(ceiling ∞, value 1.0)
        }
        other => panic!("expected Backpressure, got {other:?}"),
    }
    // ...a Reject-policy tenant has the job dropped and its value booked.
    let cheap2 = JobEnvelope::new(TenantId(1), 2, 1.0, 2.0, 0.2, 1.5);
    match handles[1].submit(cheap2) {
        Ok(Submission::RejectedByPrice { price }) => assert!(price >= 8.0),
        other => panic!("expected RejectedByPrice, got {other:?}"),
    }
    // A job rich enough to clear the price passes the gate.
    let rich = JobEnvelope::new(TenantId(0), 3, 1.0, 2.0, 0.2, 100.0);
    assert!(matches!(
        handles[0].submit(rich),
        Ok(Submission::Queued { .. })
    ));

    let report = daemon.shutdown().unwrap();
    assert_eq!(report.tenants[0].deferred, 1);
    assert_eq!(report.tenants[1].rejected_by_price, 1);
    assert_eq!(report.tenants[1].lost_value, 1.5);
    // The price trace recorded the spike.
    assert!(report.shards[0].price_trace.iter().any(|&p| p >= 8.0));
}

#[test]
fn shutdown_rejects_new_submissions() {
    let (daemon, handles) = Daemon::spawn(
        CllScheduler,
        ServeConfig::default(),
        vec![TenantSpec::new("t")],
    )
    .unwrap();
    handles[0].submit(env(0, 0.0)).unwrap();
    let report = daemon.shutdown().unwrap();
    assert_eq!(report.total_arrivals(), 1);
    assert!(matches!(
        handles[0].submit(env(1, 1.0)),
        Err(IngressError::ShuttingDown)
    ));
}

/// The per-tenant counters partition `submitted` exactly once the service
/// has drained.
#[test]
fn admission_counters_partition_submissions() {
    let config = ServeConfig {
        shards: 2,
        queue_capacity: 8,
        ..ServeConfig::default()
    };
    let tenants = vec![
        TenantSpec::new("a").on_shard(0).with_quota(4),
        TenantSpec::new("b").on_shard(1),
        TenantSpec::new("c").on_shard(1).rejecting_on_price(),
    ];
    let (daemon, handles) = Daemon::spawn(CllScheduler, config, tenants).unwrap();
    let mut produced = 0u64;
    for round in 0..200u64 {
        for handle in &handles {
            let release = round as f64 * 0.01;
            let mut e = env(round, release);
            if round % 50 == 7 {
                e.work = -1.0; // invalid on purpose
            }
            let _ = handle.submit(e); // any typed outcome is fine
            produced += 1;
        }
    }
    let report = daemon.shutdown().unwrap();
    let mut submitted_total = 0;
    for t in &report.tenants {
        assert_eq!(
            t.submitted,
            t.accepted
                + t.rejected_by_scheduler
                + t.rejected_by_price
                + t.rejected_invalid
                + t.rejected_stale
                + t.deferred
                + t.queue_full
                + t.quota_exceeded,
            "counters do not partition for tenant {}",
            t.tenant
        );
        submitted_total += t.submitted;
    }
    assert_eq!(submitted_total, produced);
    // Queue depth never exceeded the bound.
    for shard in &report.shards {
        assert!(shard.max_queue_depth() <= 8);
    }
}

/// Runs `submit everything paused → resume → lifecycle() → shutdown` and
/// returns the report.  With a fixed envelope stream and config, the fed
/// stream is deterministic, so two runs differing only in lifecycle events
/// (crashes, hand-offs) must agree on every deterministic field.
fn run_with_lifecycle(
    config: ServeConfig,
    stream: &[JobEnvelope],
    lifecycle: impl FnOnce(&mut Daemon<PdScheduler>),
) -> ServiceReport {
    let (mut daemon, handles) =
        Daemon::spawn(PdScheduler::coarse(), config, vec![TenantSpec::new("t")]).unwrap();
    for e in stream {
        match handles[0].submit(*e) {
            Ok(Submission::Queued { .. }) => {}
            other => panic!("pre-queued submission failed: {other:?}"),
        }
    }
    daemon.resume();
    lifecycle(&mut daemon);
    daemon.shutdown().unwrap()
}

fn assert_deterministic_fields_equal(a: &ServiceReport, b: &ServiceReport) {
    assert_eq!(a.shards.len(), b.shards.len());
    for (sa, sb) in a.shards.iter().zip(&b.shards) {
        assert_eq!(sa.jobs, sb.jobs, "fed job streams differ");
        assert_eq!(sa.batches, sb.batches, "batch counts differ");
        assert_eq!(sa.events.len(), sb.events.len(), "event counts differ");
        for (ea, eb) in sa.events.iter().zip(&sb.events) {
            assert_eq!(ea.job, eb.job);
            assert_eq!(ea.tag, eb.tag);
            assert_eq!(ea.batch, eb.batch);
            assert_eq!(ea.feed_time.to_bits(), eb.feed_time.to_bits());
            assert_eq!(
                ea.accepted, eb.accepted,
                "decision flipped for {:?}",
                ea.job
            );
            assert_eq!(ea.expired, eb.expired, "expiry flipped for {:?}", ea.job);
            assert_eq!(
                ea.dual.to_bits(),
                eb.dual.to_bits(),
                "dual differs for {:?}",
                ea.job
            );
        }
        assert_eq!(
            sa.price_trace.len(),
            sb.price_trace.len(),
            "price trace lengths differ"
        );
        for (pa, pb) in sa.price_trace.iter().zip(&sb.price_trace) {
            assert_eq!(pa.to_bits(), pb.to_bits(), "price traces diverge");
        }
        assert_eq!(sa.final_price.to_bits(), sb.final_price.to_bits());
        assert_eq!(sa.schedule, sb.schedule, "schedules differ");
    }
    assert_eq!(a.tenants[0].accepted, b.tenants[0].accepted);
    assert_eq!(
        a.tenants[0].rejected_by_scheduler,
        b.tenants[0].rejected_by_scheduler
    );
}

/// A deterministic single-tenant stream: increasing releases with bursts
/// of near-simultaneous arrivals, values straddling profitability.
fn lifecycle_stream(n: usize) -> Vec<JobEnvelope> {
    (0..n)
        .map(|k| {
            let burst = (k / 4) as f64;
            let jitter = (k % 4) as f64 * 1e-4;
            let release = burst * 0.5 + jitter;
            let work = 0.3 + 0.1 * ((k * 7) % 5) as f64;
            let value = 0.5 + 0.25 * ((k * 3) % 8) as f64;
            JobEnvelope::new(TenantId(0), k as u64, release, release + 2.0, work, value)
        })
        .collect()
}

fn lifecycle_config() -> ServeConfig {
    ServeConfig {
        queue_capacity: 256,
        coalesce_window: 1e-3, // each 4-burst coalesces into one batch
        max_batch: 16,
        checkpoint_every: 3,
        start_paused: true,
        ..ServeConfig::default()
    }
}

/// Kill the worker mid-load, recover on a fresh thread from the last
/// checkpoint blob: the merged outcome equals an uninterrupted run on
/// every deterministic field.  `SERVE_SMOKE=1` (the CI serve-smoke step)
/// upgrades the single mid-load kill to a sweep of crash boundaries.
#[test]
fn crash_recovery_merges_bit_identically() {
    let stream = lifecycle_stream(96);
    let baseline = run_with_lifecycle(lifecycle_config(), &stream, |_| {});
    let kills: Vec<usize> = if std::env::var_os("SERVE_SMOKE").is_some() {
        (1..=12).collect()
    } else {
        vec![5]
    };
    for kill in kills {
        let recovered = run_with_lifecycle(lifecycle_config(), &stream, |daemon| {
            daemon.crash_shard(0, kill).unwrap();
            let recovery = daemon.recover_shard(0).unwrap();
            // The crash landed past checkpoint 3k <= crash boundary: at
            // most a checkpoint cadence of batches is replayed.
            assert!(recovery.replayed_batches <= 3);
        });
        assert_deterministic_fields_equal(&baseline, &recovered);
        // The recovered run kept its checkpoint history in the report.
        assert!(recovered.shards[0].checkpoints >= 2, "kill at {kill}");
    }
}

/// A graceful hand-off (checkpoint at a quiescent boundary, resume on a
/// fresh thread) is invisible in the deterministic output.
#[test]
fn handoff_is_bit_identical_and_records_latency() {
    let stream = lifecycle_stream(96);
    let baseline = run_with_lifecycle(lifecycle_config(), &stream, |_| {});
    let handed_off = run_with_lifecycle(lifecycle_config(), &stream, |daemon| {
        let first = daemon.handoff_shard(0).unwrap();
        assert_eq!(first.replayed_batches, 0, "hand-off replays nothing");
        daemon.handoff_shard(0).unwrap();
    });
    assert_deterministic_fields_equal(&baseline, &handed_off);
    assert_eq!(handed_off.shards[0].handoffs, 2);
    assert_eq!(handed_off.drain.handoff_secs.len(), 2);
    assert!(handed_off.drain.handoff_secs.iter().all(|&s| s >= 0.0));
}

/// Crash + recovery works repeatedly, including a crash after all arrivals
/// were already fed (recovery replays the tail of the journal).
#[test]
fn repeated_crashes_still_converge() {
    let stream = lifecycle_stream(48);
    let baseline = run_with_lifecycle(lifecycle_config(), &stream, |_| {});
    let battered = run_with_lifecycle(lifecycle_config(), &stream, |daemon| {
        daemon.crash_shard(0, 2).unwrap();
        daemon.recover_shard(0).unwrap();
        daemon.crash_shard(0, 7).unwrap();
        daemon.recover_shard(0).unwrap();
    });
    assert_deterministic_fields_equal(&baseline, &battered);
}

/// The service summary of a real run survives its JSON round-trip.
#[test]
fn service_summary_round_trips_through_json() {
    let stream = lifecycle_stream(32);
    let report = run_with_lifecycle(lifecycle_config(), &stream, |daemon| {
        daemon.handoff_shard(0).unwrap();
    });
    let summary = report.summary();
    let json = summary.to_json();
    let back = pss_metrics::ServiceSummary::from_json(&json).unwrap();
    assert_eq!(back, summary);
    assert_eq!(back.shards[0].arrivals, 32);
    assert_eq!(back.drain.handoff_secs.len(), 1);
}
