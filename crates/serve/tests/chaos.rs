//! Chaos-layer tests: the determinism pin (fault-injected runs equal
//! fault-free runs on every deterministic field, and same plan seed means
//! same report), chain-fallback recovery at every corruption depth,
//! watchdog supervision with capped give-up, the all-rejected price-EWMA
//! guard, queue-full storms driven through the retry policy, and
//! out-of-order producers against the release-floor clamp.

use std::time::{Duration, Instant};

use pss_baselines::CllScheduler;
use pss_core::PdScheduler;
use pss_serve::{
    deterministic_fields_equal, ChaosDriver, ChaosStats, Daemon, FaultPlan, RetryError,
    RetryPolicy, ServeConfig, ServiceReport, Submission, TenantSpec, WatchdogVerdict,
};
use pss_types::{IngressError, JobEnvelope, TenantId};
use pss_workloads::{RandomConfig, SmallRng};

/// A valid envelope for tenant 0 with the given tag and release.
fn env(tag: u64, release: f64) -> JobEnvelope {
    JobEnvelope::new(TenantId(0), tag, release, release + 20.0, 0.2, 1.0)
}

/// A job PD provably rejects: far more work than its window can hold at
/// any sane speed, with a value high enough to pass every price gate.
fn hopeless(tag: u64, release: f64, value: f64) -> JobEnvelope {
    JobEnvelope::new(TenantId(0), tag, release, release + 0.1, 50.0, value)
}

/// Polls `probe` until it returns true or the deadline passes.
fn wait_for(what: &str, mut probe: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !probe() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::yield_now();
    }
}

/// Single-shard lifecycle config: one batch per paused wave (unbounded
/// coalescing), a checkpoint after every batch, a chain of 3.
fn wave_config() -> ServeConfig {
    ServeConfig {
        queue_capacity: 64,
        coalesce_window: f64::INFINITY,
        max_batch: 64,
        checkpoint_every: 1,
        checkpoint_chain: 3,
        stale_tolerance: f64::INFINITY,
        start_paused: true,
        ..ServeConfig::default()
    }
}

/// Feeds one wave of envelopes as a single deterministic batch: queue
/// everything while paused, resume, wait for the decision events, pause
/// again at the quiescent boundary.
fn feed_wave<A>(daemon: &Daemon<A>, handle: &pss_serve::TenantHandle, wave: &[JobEnvelope])
where
    A: pss_types::OnlineAlgorithm,
    A::Run: pss_types::LogCheckpointable + Send + 'static,
{
    let epoch = daemon.shard_idle_epoch(0);
    wait_for("worker parked", || daemon.shard_idle_epoch(0) > epoch);
    for envelope in wave {
        assert!(
            matches!(handle.submit(*envelope), Ok(Submission::Queued { .. })),
            "wave envelope must queue"
        );
    }
    let expected = daemon.shard_event_count(0) + wave.len();
    daemon.resume();
    wait_for("wave events", || daemon.shard_event_count(0) >= expected);
    daemon.pause();
}

// ---------------------------------------------------------------------------
// The tentpole pin: chaos is invisible on every deterministic field.
// ---------------------------------------------------------------------------

/// Everything but wall-clock: injected counts and recovery work must
/// replay exactly under the same plan.
fn assert_stats_replay(a: &ChaosStats, b: &ChaosStats) {
    assert_eq!(a.waves, b.waves);
    assert_eq!(a.jobs, b.jobs);
    assert_eq!(a.kills, b.kills);
    assert_eq!(a.feed_faults, b.feed_faults);
    assert_eq!(a.corruptions, b.corruptions);
    assert_eq!(a.chain_skipped, b.chain_skipped);
    assert_eq!(a.cold_restarts, b.cold_restarts);
    assert_eq!(a.recoveries, b.recoveries);
    assert_eq!(a.replayed_batches, b.replayed_batches);
    assert_eq!(a.priced_out, b.priced_out);
    assert_eq!(a.storm_bounces, b.storm_bounces);
    assert_eq!(a.retry_give_ups, b.retry_give_ups);
    assert_eq!(a.flood_bounces, b.flood_bounces);
}

#[test]
fn fault_injected_soak_equals_fault_free_run_and_replays_bit_identically() {
    let instance = RandomConfig {
        n_jobs: 36,
        ..RandomConfig::standard(11)
    }
    .generate();
    let driver = ChaosDriver::default();
    let plan = FaultPlan::generate(11, 9, driver.checkpoint_chain);

    // The fault-free reference runs the SAME plan with injection off: the
    // wave partition and adversarial interleavings apply, faults do not.
    let free = driver
        .run(PdScheduler::coarse(), &instance, &plan, false)
        .unwrap();
    let noisy = driver
        .run(PdScheduler::coarse(), &instance, &plan, true)
        .unwrap();
    let replay = driver
        .run(PdScheduler::coarse(), &instance, &plan, true)
        .unwrap();

    // The reference injected nothing; the noisy run injected every class.
    assert_eq!(free.stats.kills, 0);
    assert_eq!(free.stats.feed_faults, 0);
    assert_eq!(free.stats.recoveries, 0);
    assert_eq!(free.stats.storm_bounces, 0);
    // Every instance job either fed the scheduler or was priced out by the
    // dual gate — and the split itself is deterministic.
    assert_eq!(free.stats.jobs + free.stats.priced_out, 36);
    assert_eq!(free.stats.jobs, noisy.stats.jobs);
    assert_eq!(free.stats.priced_out, noisy.stats.priced_out);
    assert!(noisy.stats.kills >= 1, "plan must kill at least once");
    assert!(noisy.stats.feed_faults >= 1, "plan must poison a feed");
    assert!(noisy.stats.corruptions >= 1, "plan must corrupt a blob");
    assert_eq!(
        noisy.stats.recoveries,
        noisy.stats.kills + noisy.stats.feed_faults,
        "every lifecycle fault is healed by exactly one recovery"
    );

    // The pin: chaos is invisible on every deterministic field, and the
    // same plan seed reproduces the same report and the same injections.
    assert!(
        deterministic_fields_equal(&free.report, &noisy.report),
        "fault-injected run diverged from the fault-free reference"
    );
    assert!(
        deterministic_fields_equal(&noisy.report, &replay.report),
        "same fault plan, different report"
    );
    assert_stats_replay(&noisy.stats, &replay.stats);
}

#[test]
fn chaos_runs_are_seed_sensitive() {
    let instance = RandomConfig {
        n_jobs: 24,
        machines: 1, // CLL is a single-machine algorithm
        ..RandomConfig::standard(3)
    }
    .generate();
    let driver = ChaosDriver::default();
    let a = driver
        .run(
            CllScheduler,
            &instance,
            &FaultPlan::generate(1, 6, 3),
            false,
        )
        .unwrap();
    let b = driver
        .run(
            CllScheduler,
            &instance,
            &FaultPlan::generate(2, 6, 3),
            false,
        )
        .unwrap();
    // Different seeds shape the workload differently (interleavings and
    // storm-sized waves), so the reports legitimately differ.
    assert!(
        !deterministic_fields_equal(&a.report, &b.report),
        "different plan seeds should not collide on the full report"
    );
}

// ---------------------------------------------------------------------------
// Satellite: chain fallback at every corruption depth.
// ---------------------------------------------------------------------------

#[test]
fn recovery_falls_back_through_the_chain_at_every_corruption_depth() {
    // Reference: the same five single-job waves with no crash at all.
    let (daemon, handles) = Daemon::spawn(
        PdScheduler::coarse(),
        wave_config(),
        vec![TenantSpec::new("t")],
    )
    .unwrap();
    for i in 0..5 {
        feed_wave(&daemon, &handles[0], &[env(i, i as f64)]);
    }
    daemon.resume();
    let reference = daemon.shutdown().unwrap();

    // With a chain of 3 and five checkpoints taken, corrupting the k
    // newest blobs forces recovery k levels deep; k == 3 corrupts the
    // whole chain and must cold-restart, replaying the entire journal.
    for k in 0..=3usize {
        let (mut daemon, handles) = Daemon::spawn(
            PdScheduler::coarse(),
            wave_config(),
            vec![TenantSpec::new("t")],
        )
        .unwrap();
        for i in 0..5 {
            feed_wave(&daemon, &handles[0], &[env(i, i as f64)]);
        }
        daemon.crash_shard(0, 0).unwrap();
        let mut rng = SmallRng::seed_from_u64(k as u64);
        for depth in 0..k {
            daemon
                .corrupt_checkpoint(0, depth, rng.usize_range(0, 4095))
                .unwrap();
        }
        let report = daemon.recover_shard(0).unwrap();
        assert_eq!(report.chain_skipped, k, "k corrupted blobs, k skips");
        assert_eq!(report.cold_restart, k == 3, "full-chain corruption");
        // Chain entries hold batches 3, 4, 5 (newest last); restoring the
        // (k+1)-newest replays the k newer batches — or all 5 from cold.
        let expected_replay = if k == 3 { 5 } else { k };
        assert_eq!(report.replayed_batches, expected_replay);
        daemon.resume();
        let recovered = daemon.shutdown().unwrap();
        assert!(
            deterministic_fields_equal(&reference, &recovered),
            "depth-{k} recovery diverged from the crash-free reference"
        );
    }
}

#[test]
fn corrupting_a_missing_checkpoint_is_a_typed_error() {
    let (mut daemon, handles) = Daemon::spawn(
        PdScheduler::coarse(),
        wave_config(),
        vec![TenantSpec::new("t")],
    )
    .unwrap();
    feed_wave(&daemon, &handles[0], &[env(0, 0.0)]);
    // One checkpoint exists; offset 0 works, offset 7 does not.
    daemon.crash_shard(0, 0).unwrap();
    assert!(daemon.corrupt_checkpoint(0, 0, 17).is_ok());
    assert!(daemon.corrupt_checkpoint(0, 7, 17).is_err());
    daemon.recover_shard(0).unwrap();
    daemon.resume();
    daemon.shutdown().unwrap();
}

// ---------------------------------------------------------------------------
// Tentpole: O(active) checkpoints — the segment log compacts at every
// capture, live blobs undercut the legacy full-frontier blobs, and crash
// recovery from (log, blob) is bit-identical in both encoding modes.
// ---------------------------------------------------------------------------

#[test]
fn seglog_checkpoints_compact_and_recover_bit_identically_in_both_modes() {
    let run = |full_frontier: bool, crash: bool| {
        let config = wave_config().with_full_frontier_checkpoints(full_frontier);
        let (mut daemon, handles) =
            Daemon::spawn(PdScheduler::coarse(), config, vec![TenantSpec::new("t")]).unwrap();
        for i in 0..6 {
            feed_wave(&daemon, &handles[0], &[env(i, i as f64)]);
        }
        // Wait for the park after the last wave's checkpoint so the log
        // stats and chain sizes are read at a quiescent boundary.
        let epoch = daemon.shard_idle_epoch(0);
        wait_for("post-wave park", || daemon.shard_idle_epoch(0) > epoch);
        let (segments, records) = daemon.shard_log_stats(0);
        let sizes = daemon.shard_checkpoint_sizes(0);
        if crash {
            // Corrupt the newest blob: recovery falls back one level, so
            // the restored run reassembles its frontier from a log cursor
            // *below* the compaction point, truncates the log there, and
            // replays the newer batch on top.
            daemon.crash_shard(0, 0).unwrap();
            daemon.corrupt_checkpoint(0, 0, 33).unwrap();
            let report = daemon.recover_shard(0).unwrap();
            assert_eq!(report.chain_skipped, 1);
            assert!(!report.cold_restart);
            assert_eq!(report.replayed_batches, 1);
        }
        daemon.resume();
        (daemon.shutdown().unwrap(), segments, records, sizes)
    };

    let (live, live_segments, live_records, live_sizes) = run(false, true);
    let (legacy, _, _, legacy_sizes) = run(true, true);
    let (free, ..) = run(false, false);

    // The encoding toggle and the crash are both invisible on every
    // deterministic field.
    assert!(
        deterministic_fields_equal(&live, &free),
        "seglog crash recovery diverged from the crash-free reference"
    );
    assert!(
        deterministic_fields_equal(&live, &legacy),
        "checkpoint encoding leaked into the scheduling path"
    );

    // Compaction at capture: every committed segment lives in the log's
    // prefix, no record envelope outlives the capture that folded it.
    assert!(live_segments > 0, "committed work must reach the log");
    assert_eq!(
        live_records, 0,
        "capture must compact the log's record envelopes"
    );
    // O(active): the newest live blob undercuts the legacy full-frontier
    // blob captured at the same cut, and the chain respects its bound.
    assert!(live_sizes.len() <= 3 && legacy_sizes.len() <= 3);
    let (live_last, legacy_last) = (*live_sizes.last().unwrap(), *legacy_sizes.last().unwrap());
    assert!(
        live_last < legacy_last,
        "O(active) blob ({live_last} B) should undercut full-frontier ({legacy_last} B)"
    );
}

// ---------------------------------------------------------------------------
// Satellite-adjacent: watchdog supervision — poisoned feeds heal, and
// consecutive failures hit the cap as a typed give-up.
// ---------------------------------------------------------------------------

#[test]
fn watchdog_recovers_a_poisoned_feed_and_replays_the_logged_batch() {
    let (mut daemon, handles) = Daemon::spawn(
        PdScheduler::coarse(),
        wave_config(),
        vec![TenantSpec::new("t")],
    )
    .unwrap();
    feed_wave(&daemon, &handles[0], &[env(0, 0.0)]);

    // Arm the transient fault at the next batch, queue a wave, resume: the
    // worker journals the batch, poisons and dies without feeding it.
    daemon.inject_feed_fault(0, 1);
    assert!(matches!(
        handles[0].submit(env(1, 1.0)),
        Ok(Submission::Queued { .. })
    ));
    daemon.resume();
    let verdict = loop {
        match daemon.watchdog_sweep().unwrap()[0] {
            WatchdogVerdict::Healthy => std::thread::yield_now(),
            verdict => break verdict,
        }
    };
    match verdict {
        WatchdogVerdict::Recovered { report, attempts } => {
            assert_eq!(attempts, 1);
            assert!(
                report.replayed_batches >= 1,
                "the poisoned batch was journalled and must be replayed"
            );
            assert!(!report.cold_restart);
        }
        other => panic!("expected a recovery, got {other:?}"),
    }
    wait_for("replayed events", || daemon.shard_event_count(0) >= 2);
    let report = daemon.shutdown().unwrap();
    assert_eq!(report.total_arrivals(), 2, "no event lost to the fault");
}

#[test]
fn watchdog_gives_up_after_the_configured_consecutive_attempts() {
    let config = ServeConfig {
        max_recovery_attempts: 2,
        ..wave_config()
    };
    let (mut daemon, handles) =
        Daemon::spawn(PdScheduler::coarse(), config, vec![TenantSpec::new("t")]).unwrap();
    feed_wave(&daemon, &handles[0], &[env(0, 0.0)]);

    // Two consecutive dead sweeps auto-recover; the third gives up.
    for expected in 1..=2usize {
        daemon.crash_shard(0, 0).unwrap();
        match daemon.watchdog_sweep().unwrap()[0] {
            WatchdogVerdict::Recovered { attempts, .. } => assert_eq!(attempts, expected),
            other => panic!("expected recovery #{expected}, got {other:?}"),
        }
    }
    daemon.crash_shard(0, 0).unwrap();
    assert_eq!(
        daemon.watchdog_sweep().unwrap()[0],
        WatchdogVerdict::GaveUp { attempts: 2 }
    );
    // Manual recovery still works after a give-up, and a healthy sweep
    // resets the consecutive counter so supervision can resume.
    daemon.recover_shard(0).unwrap();
    assert_eq!(
        daemon.watchdog_sweep().unwrap()[0],
        WatchdogVerdict::Healthy
    );
    daemon.crash_shard(0, 0).unwrap();
    match daemon.watchdog_sweep().unwrap()[0] {
        WatchdogVerdict::Recovered { attempts, .. } => {
            assert_eq!(attempts, 1, "healthy sweep must reset the counter");
        }
        other => panic!("expected a post-reset recovery, got {other:?}"),
    }
    daemon.resume();
    daemon.shutdown().unwrap();
}

// ---------------------------------------------------------------------------
// Satellite: rejection duals price in; decision-free bounces never do.
// ---------------------------------------------------------------------------

#[test]
fn rejection_only_batches_fold_their_duals_into_the_price() {
    let config = ServeConfig {
        price_smoothing: 0.5,
        ..wave_config()
    };
    let (daemon, handles) =
        Daemon::spawn(PdScheduler::coarse(), config, vec![TenantSpec::new("t")]).unwrap();

    // An accepted batch is a pricing event and moves the EWMA off zero.
    feed_wave(&daemon, &handles[0], &[env(0, 0.0)]);
    let price = daemon.shard_price(0);
    assert!(price.is_finite() && !price.is_nan());

    // A batch of provably rejected jobs (duals = their values, 8.0 each)
    // IS a pricing event: every rejection folds its lost value v_j into
    // the EWMA — the congestion signal cheapest-price routing reads.
    // (Skipping rejection-only batches froze a congested shard's price
    // and made the router herd onto it — the E17 starvation bug.)  The
    // fold is deterministic, one EWMA step per decision in feed order.
    feed_wave(
        &daemon,
        &handles[0],
        &[hopeless(1, 1.0, 8.0), hopeless(2, 1.0, 8.0)],
    );
    let mut expected = price;
    for _ in 0..2 {
        expected = 0.5 * expected + 0.5 * 8.0;
    }
    assert_eq!(daemon.shard_price(0).to_bits(), expected.to_bits());
    assert!(
        daemon.shard_price(0) > price,
        "a rejection flood must raise a low price, not freeze it"
    );

    // The ratchet side of the fold: a rejection whose lost value sits
    // *below* the current price is only one-sided evidence (the clearing
    // price is at least v_j), so it must leave the price bit-unchanged —
    // a flood of cheap hopeless jobs cannot drag the price down and keep
    // the congested shard the routing argmin (the cheap-job magnetism
    // half of the E17 fix).  Both jobs pass admission against the price
    // *at queue time*; in feed order the first rejection (v = 20) folds
    // the price up past the second (v = 7), which must then not fold.
    feed_wave(
        &daemon,
        &handles[0],
        &[hopeless(4, 2.0, 20.0), hopeless(5, 2.0, 7.0)],
    );
    expected = 0.5 * expected + 0.5 * 20.0;
    assert_eq!(
        daemon.shard_price(0).to_bits(),
        expected.to_bits(),
        "a below-price rejection must not move the price"
    );
    let frozen = daemon.shard_price(0);

    // The surviving PR-8 guard: a typed admission bounce produces no
    // decision, so it leaves the price bit-unchanged — and the price is
    // never NaN.  The dead-on-arrival path exercises it.
    let doa = JobEnvelope::new(TenantId(0), 3, 0.5, 0.9, 0.1, 1.0);
    let epoch = daemon.shard_idle_epoch(0);
    wait_for("worker parked", || daemon.shard_idle_epoch(0) > epoch);
    // Watermark sits past 1.0, so the gate bounces it typed — and typed
    // bounces are decision-free by construction.
    assert!(matches!(
        handles[0].submit(doa),
        Err(IngressError::Expired { .. })
    ));
    assert_eq!(daemon.shard_price(0).to_bits(), frozen.to_bits());
    daemon.resume();
    let report = daemon.shutdown().unwrap();
    assert_eq!(report.shards[0].final_price.to_bits(), frozen.to_bits());
    assert!(report.shards[0].price_trace.iter().all(|p| !p.is_nan()));
}

#[test]
fn ceiling_zero_flood_bounces_typed_and_never_poisons_the_price() {
    // Tenant 1 has a price ceiling of 0 and a rejecting policy: once the
    // price is positive, its flood is refused at admission, every bounce
    // is typed, and the EWMA never sees a decoy.
    let config = ServeConfig {
        price_smoothing: 1.0,
        ..wave_config()
    };
    let tenants = vec![
        TenantSpec::new("svc"),
        TenantSpec::new("flood").with_price_ceiling(0.0),
    ];
    let (daemon, handles) = Daemon::spawn(PdScheduler::coarse(), config, tenants).unwrap();

    // Establish a strictly positive price: PD accepts the anchor and the
    // coalesced hopeless job folds its rejection dual (value 8).
    feed_wave(&daemon, &handles[0], &[env(0, 0.0), hopeless(1, 0.0, 8.0)]);
    let price = daemon.shard_price(0);
    assert!(price > 0.0, "the anchor wave must lift the price");

    let mut flood = env(100, 2.0);
    flood.tenant = TenantId(1);
    for i in 0..50 {
        flood.tag = 100 + i;
        match handles[1].submit(flood) {
            Err(IngressError::Backpressure { threshold, .. }) => {
                assert_eq!(threshold.to_bits(), 0.0f64.to_bits());
            }
            other => panic!("flood decoy must bounce on price, got {other:?}"),
        }
    }
    assert_eq!(
        daemon.shard_price(0).to_bits(),
        price.to_bits(),
        "admission bounces must not move the price"
    );
    assert!(!daemon.shard_price(0).is_nan());
    daemon.resume();
    let report = daemon.shutdown().unwrap();
    assert_eq!(report.tenants[1].submitted, 50);
    assert_eq!(report.total_arrivals(), 2, "no decoy reached the scheduler");
}

// ---------------------------------------------------------------------------
// Satellite: retry termination against a capacity-2 queue-full storm.
// ---------------------------------------------------------------------------

#[test]
fn retry_terminates_with_typed_give_up_against_a_parked_full_ring() {
    let config = ServeConfig {
        queue_capacity: 2,
        ..wave_config()
    };
    let (daemon, handles) =
        Daemon::spawn(PdScheduler::coarse(), config, vec![TenantSpec::new("t")]).unwrap();
    // Fill the capacity-2 ring while the worker is parked: nothing drains.
    for tag in 0..2 {
        assert!(matches!(
            handles[0].submit(env(tag, 0.0)),
            Ok(Submission::Queued { .. })
        ));
    }
    let policy = RetryPolicy {
        max_attempts: 5,
        base_delay: 1e-5,
        max_delay: 1e-4,
        jitter: 0.5,
    };
    let mut rng = SmallRng::seed_from_u64(21);
    match policy.submit(&handles[0], env(2, 0.0), &mut rng) {
        Err(RetryError::Exhausted { last, attempts }) => {
            assert_eq!(attempts, 5, "the budget is spent exactly");
            match last {
                IngressError::QueueFull { capacity, .. } => assert_eq!(capacity, 2),
                other => panic!("expected QueueFull, got {other}"),
            }
        }
        other => panic!("expected a typed give-up, got {other:?}"),
    }

    // Non-retryable errors short-circuit on the first attempt.
    let mut invalid = env(3, 0.0);
    invalid.work = f64::NAN;
    match policy.submit(&handles[0], invalid, &mut rng) {
        Err(RetryError::Fatal { error, attempts }) => {
            assert_eq!(attempts, 1, "no budget burned on a hopeless cause");
            assert!(!error.is_retryable());
        }
        other => panic!("expected a fatal short-circuit, got {other:?}"),
    }

    // Once the worker drains, the same retry loop runs to completion.
    daemon.resume();
    let patient = RetryPolicy {
        max_attempts: 200,
        ..policy
    };
    match patient.submit(&handles[0], env(4, 0.5), &mut rng) {
        Ok(Submission::Queued { .. }) => {}
        other => panic!("retry against a draining ring must land, got {other:?}"),
    }
    wait_for("drain", || daemon.shard_event_count(0) >= 3);
    let report = daemon.shutdown().unwrap();
    assert_eq!(report.total_arrivals(), 3);
    // The give-up burned 5 attempts, the fatal 1, the landing >= 1.
    assert!(report.tenants[0].submitted >= 8);
}

// ---------------------------------------------------------------------------
// Satellite: out-of-order producers and the release-floor clamp.
// ---------------------------------------------------------------------------

fn run_out_of_order() -> ServiceReport {
    let (daemon, handles) =
        Daemon::spawn(CllScheduler, wave_config(), vec![TenantSpec::new("t")]).unwrap();
    // Wave 1 arrives shuffled far beyond ARRIVAL_ORDER_TOLERANCE; wave 2
    // opens with a release (2.0) behind the watermark wave 1 left (5.0).
    feed_wave(
        &daemon,
        &handles[0],
        &[env(0, 5.0), env(1, 1.0), env(2, 3.0), env(3, 0.5)],
    );
    feed_wave(&daemon, &handles[0], &[env(4, 2.0), env(5, 9.0)]);
    daemon.resume();
    daemon.shutdown().unwrap()
}

#[test]
fn out_of_order_submissions_clamp_to_the_release_floor_and_replay_bit_identically() {
    let report = run_out_of_order();
    let shard = &report.shards[0];
    assert_eq!(shard.jobs.len(), 6);

    // The scheduler saw nondecreasing releases (the floor only ratchets),
    // no fed release moved past its batch's feed time, and windows stayed
    // open — that is the whole clamp contract.
    let mut floor = f64::NEG_INFINITY;
    for (job, event) in shard.jobs.iter().zip(&shard.events) {
        assert!(job.release >= floor, "releases must be nondecreasing");
        floor = job.release;
        assert!(job.release >= event.release, "clamp only lifts releases");
        assert!(job.release <= event.feed_time, "clamp never passes feed");
        assert!(job.deadline > job.release, "clamp keeps windows open");
    }
    // Events preserve the original (unclamped) submitted releases.
    let submitted: Vec<f64> = shard.events.iter().map(|e| e.release).collect();
    assert_eq!(submitted, vec![5.0, 1.0, 3.0, 0.5, 2.0, 9.0]);
    // The late opener of wave 2 was clamped up to wave 1's floor.
    assert!(shard.jobs[4].release >= 5.0);

    // Bit-identical replay: the same out-of-order protocol reproduces the
    // report exactly.
    let again = run_out_of_order();
    assert!(deterministic_fields_equal(&report, &again));
}
