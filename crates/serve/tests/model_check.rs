//! Bounded-exhaustive model checks of the serving layer's lock-free
//! protocols, run only under `RUSTFLAGS="--cfg pss_model_check"` (the CI
//! `MODEL_CHECK` step): in that build the `pss_check` facade routes every
//! atomic operation and every queue-slot access through the controlled
//! scheduler, so these tests explore *all* interleavings within the
//! configured bounds rather than the few a stress test happens to hit.
//!
//! Three protocols are modelled:
//!
//! * the MPSC use of [`ArrivalQueue`] (no lost or duplicated values,
//!   per-producer FIFO, `QueueFull` correctness across wrap-around);
//! * the price/watermark publication pair (no torn reads, watermark
//!   monotone, price never staler than the watermark read before it);
//! * the shutdown protocol (a submission racing the drain is either fed
//!   or bounced — never silently lost), including a regression model of
//!   the *previous* plain-load drain check, which the checker must
//!   reject.
#![cfg(pss_model_check)]

use std::sync::{Arc, Mutex};

use pss_check::model::{Model, ModelRun};
use pss_check::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use pss_serve::ArrivalQueue;

/// Checks that `inner`'s elements appear in `outer` in the same relative
/// order (per-producer FIFO).
fn is_subsequence(inner: &[u64], outer: &[u64]) -> bool {
    let mut it = outer.iter();
    inner.iter().all(|x| it.any(|y| y == x))
}

/// Two producers race two values each into a capacity-2 ring while a
/// consumer drains concurrently — large enough that the sequence numbers
/// wrap the ring (positions reach 4 > capacity) and pushes hit
/// `QueueFull`.  The bounded space is bigger than the execution cap, so
/// the run explores the cap's worth of distinct interleavings (well past
/// the thousand the acceptance bar asks for) depth-first.  The finale
/// asserts exact conservation: every successfully pushed value is
/// delivered exactly once (consumed or still queued), in per-producer
/// FIFO order.
#[test]
fn mpsc_queue_conserves_values_in_fifo_order() {
    let report = Model::new().check(|| {
        let queue: Arc<ArrivalQueue<u64>> = Arc::new(ArrivalQueue::with_capacity(2));
        let pushed: Arc<Mutex<Vec<Vec<u64>>>> = Arc::new(Mutex::new(vec![Vec::new(); 2]));
        let consumed: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));

        let mut threads: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        for p in 0..2u64 {
            let queue = Arc::clone(&queue);
            let pushed = Arc::clone(&pushed);
            threads.push(Box::new(move || {
                for i in 0..2u64 {
                    let value = p * 10 + i;
                    // One bounded retry: a failed push is a legitimate
                    // `QueueFull` outcome, not an error — the value is
                    // simply never recorded as pushed.
                    for _attempt in 0..2 {
                        if queue.push(value).is_ok() {
                            pushed.lock().unwrap()[p as usize].push(value);
                            break;
                        }
                        pss_check::thread::yield_now();
                    }
                }
            }));
        }
        {
            let queue = Arc::clone(&queue);
            let consumed = Arc::clone(&consumed);
            threads.push(Box::new(move || {
                for _ in 0..3 {
                    if let Some(v) = queue.pop() {
                        consumed.lock().unwrap().push(v);
                    }
                    pss_check::thread::yield_now();
                }
            }));
        }

        ModelRun {
            threads,
            finale: Box::new(move || {
                // Drain what the consumer did not get to.
                let mut delivered = consumed.lock().unwrap().clone();
                while let Some(v) = queue.pop() {
                    delivered.push(v);
                }
                let pushed = pushed.lock().unwrap();
                let mut expected: Vec<u64> = pushed.iter().flatten().copied().collect();
                let mut got = delivered.clone();
                expected.sort_unstable();
                got.sort_unstable();
                assert_eq!(got, expected, "lost or duplicated values");
                for per_producer in pushed.iter() {
                    assert!(
                        is_subsequence(per_producer, &delivered),
                        "producer order {per_producer:?} not preserved in {delivered:?}"
                    );
                }
            }),
        }
    });
    assert!(
        report.interleavings > 1000,
        "expected > 1000 interleavings, got {}",
        report.interleavings
    );
    println!(
        "mpsc model: {} interleavings, {} pruned, capped: {}",
        report.interleavings, report.pruned, report.capped
    );
}

/// The daemon's backpressure signals: the worker publishes `price` then
/// `watermark` (both `Release`, as f64 bits); admission reads `watermark`
/// then `price` (both `Acquire`).  The model asserts reads are never torn
/// (every observed bit pattern is one that was actually stored), the
/// watermark is monotone across successive reads, and a reader that saw
/// batch k's watermark sees a price at least as fresh as batch k's.
#[test]
fn price_watermark_publication_is_untorn_and_monotone() {
    // Two batches: (price, watermark) = (0.5, 1.0) then (0.75, 2.0).
    let report = Model::new().check(|| {
        let price = Arc::new(AtomicU64::new(0.0f64.to_bits()));
        let watermark = Arc::new(AtomicU64::new(f64::NEG_INFINITY.to_bits()));
        let (wp, ww) = (Arc::clone(&price), Arc::clone(&watermark));
        let (rp, rw) = (Arc::clone(&price), Arc::clone(&watermark));
        ModelRun {
            threads: vec![
                Box::new(move || {
                    for (p, w) in [(0.5f64, 1.0f64), (0.75, 2.0)] {
                        wp.store(p.to_bits(), Ordering::Release);
                        ww.store(w.to_bits(), Ordering::Release);
                    }
                }),
                Box::new(move || {
                    let mut last_watermark = f64::NEG_INFINITY;
                    for _ in 0..2 {
                        let w = f64::from_bits(rw.load(Ordering::Acquire));
                        let p = f64::from_bits(rp.load(Ordering::Acquire));
                        assert!(
                            w == f64::NEG_INFINITY || w == 1.0 || w == 2.0,
                            "torn watermark {w}"
                        );
                        assert!(p == 0.0 || p == 0.5 || p == 0.75, "torn price {p}");
                        assert!(w >= last_watermark, "watermark went backwards: {w}");
                        last_watermark = w;
                        // Seeing batch k's watermark (stored after its
                        // price) implies a price at least that fresh.
                        if w == 2.0 {
                            assert_eq!(p, 0.75, "price staler than the watermark");
                        }
                        if w == 1.0 {
                            assert!(p >= 0.5, "price staler than the watermark");
                        }
                    }
                }),
            ],
            finale: Box::new(|| ()),
        }
    });
    assert!(report.interleavings > 2);
    println!(
        "price/watermark model: {} interleavings",
        report.interleavings
    );
}

/// The shutdown drain protocol, as the daemon implements it after the
/// fix: the worker probes `submitting` with an `AcqRel` RMW *before*
/// re-checking queue emptiness.  Builds the model either way so the same
/// code also demonstrates (in
/// [`previous_shutdown_check_loses_a_final_push`]) that the pre-fix
/// plain-`Acquire`-load version loses a submission.
fn shutdown_model(fixed: bool) -> ModelRun {
    let queue: Arc<ArrivalQueue<u64>> = Arc::new(ArrivalQueue::with_capacity(2));
    let submitting = Arc::new(AtomicUsize::new(0));
    let shutdown = Arc::new(AtomicBool::new(false));
    // What each side observed: did the submitter push or bounce, did the
    // worker exit believing the drain complete, and what it drained.
    let pushed = Arc::new(Mutex::new(Vec::<u64>::new()));
    let drained = Arc::new(Mutex::new(Vec::<u64>::new()));
    let clean_exit = Arc::new(Mutex::new(false));

    let submitter: Box<dyn FnOnce() + Send> = {
        let (queue, submitting, shutdown) = (
            Arc::clone(&queue),
            Arc::clone(&submitting),
            Arc::clone(&shutdown),
        );
        let pushed = Arc::clone(&pushed);
        Box::new(move || {
            // The daemon's submit(): announce, gate on shutdown, push.
            submitting.fetch_add(1, Ordering::AcqRel);
            if !shutdown.load(Ordering::Acquire) && queue.push(7).is_ok() {
                pushed.lock().unwrap().push(7);
            }
            submitting.fetch_sub(1, Ordering::AcqRel);
        })
    };
    let worker: Box<dyn FnOnce() + Send> = {
        let (queue, submitting, shutdown) = (
            Arc::clone(&queue),
            Arc::clone(&submitting),
            Arc::clone(&shutdown),
        );
        let (drained, clean_exit) = (Arc::clone(&drained), Arc::clone(&clean_exit));
        Box::new(move || {
            // Control plane raises the drain flag, then the worker loop
            // runs bounded rounds of drain-then-check.
            shutdown.store(true, Ordering::Release);
            for _ in 0..3 {
                while let Some(v) = queue.pop() {
                    drained.lock().unwrap().push(v);
                }
                let quiescent = if fixed {
                    // Post-fix: latest-value probe first, then re-check.
                    shutdown.load(Ordering::Acquire)
                        && submitting.fetch_add(0, Ordering::AcqRel) == 0
                        && queue.is_empty()
                } else {
                    // Pre-fix: plain loads, emptiness checked first.
                    shutdown.load(Ordering::Acquire)
                        && queue.is_empty()
                        && submitting.load(Ordering::Acquire) == 0
                };
                if quiescent {
                    *clean_exit.lock().unwrap() = true;
                    return;
                }
                pss_check::thread::yield_now();
            }
        })
    };

    ModelRun {
        threads: vec![submitter, worker],
        finale: Box::new(move || {
            if !*clean_exit.lock().unwrap() {
                // The bounded loop ran out of rounds before quiescence —
                // a legal (if unexplored-further) prefix, nothing to
                // assert.
                return;
            }
            // A clean exit promises the drain was complete: every pushed
            // value was drained before the worker left; nothing may
            // remain in the queue.
            let mut leftover = Vec::new();
            while let Some(v) = queue.pop() {
                leftover.push(v);
            }
            assert!(
                leftover.is_empty(),
                "worker exited cleanly but left {leftover:?} in the queue"
            );
            let mut p = pushed.lock().unwrap().clone();
            let mut d = drained.lock().unwrap().clone();
            p.sort_unstable();
            d.sort_unstable();
            assert_eq!(d, p, "drained values differ from pushed values");
        }),
    }
}

#[test]
fn shutdown_drain_never_loses_a_final_push() {
    let report = Model::new().check(|| shutdown_model(true));
    assert!(report.interleavings > 2);
    println!("shutdown model: {} interleavings", report.interleavings);
}

/// Regression: the drain check the daemon shipped *before* this PR — a
/// plain `Acquire` load of `submitting`, after the emptiness check — can
/// exit while a submitter's push is still invisible, losing the value.
/// The checker must find that interleaving.
#[test]
fn previous_shutdown_check_loses_a_final_push() {
    let report = Model::new().explore(|| shutdown_model(false));
    let failure = report
        .failure
        .expect("the pre-fix drain check should lose a push in some interleaving");
    assert!(
        failure.message.contains("queue") || failure.message.contains("drained"),
        "unexpected failure: {failure}"
    );
}
