//! Router suites: bit-identical stepped replay across shard counts and
//! policies, the hash-routing invariant (a job's shard never moves), the
//! S = 1 pin against a hand-driven unsharded daemon, the frontier-merge
//! energy identity with per-shard schedule validation, the true peak
//! queue depth counter, and the free-running throughput mode.
//!
//! `ROUTE_SMOKE=1` (the CI route-smoke step) widens the replay matrix to
//! the full S ∈ {1, 2, 4, 8} sweep.

use std::time::{Duration, Instant};

use pss_baselines::CllScheduler;
use pss_core::PdScheduler;
use pss_serve::{
    deterministic_fields_equal, routed_fields_equal, Daemon, ServeConfig, ServiceReport,
    StreamRouter, Submission, TenantSpec,
};
use pss_sim::RoutePolicy;
use pss_types::{Instance, JobEnvelope, JobId, TenantId};
use pss_workloads::{arrival_envelopes, ScenarioConfig, ScenarioKind};

fn scenario(kind: ScenarioKind, n_jobs: usize, seed: u64) -> Instance {
    ScenarioConfig {
        n_jobs,
        ..ScenarioConfig::new(kind, seed)
    }
    .generate()
}

fn router(instance: &Instance, shards: usize, policy: RoutePolicy) -> StreamRouter {
    StreamRouter {
        shards,
        policy,
        machines_per_shard: instance.machines,
        alpha: instance.alpha,
        ..StreamRouter::default()
    }
}

fn shard_counts() -> Vec<usize> {
    if std::env::var_os("ROUTE_SMOKE").is_some() {
        vec![1, 2, 4, 8]
    } else {
        vec![1, 4]
    }
}

#[test]
fn stepped_replay_is_bit_identical_across_shard_counts_and_policies() {
    let instance = scenario(ScenarioKind::FlashCrowd, 64, 11);
    for shards in shard_counts() {
        for policy in RoutePolicy::all() {
            let r = router(&instance, shards, policy);
            let a = r.run_stepped(PdScheduler::coarse(), &instance).unwrap();
            let b = r.run_stepped(PdScheduler::coarse(), &instance).unwrap();
            assert!(
                routed_fields_equal(&a, &b),
                "replay diverged at S={shards}, policy={}",
                policy.name()
            );
            assert_eq!(a.submissions.len(), instance.len());
            assert_eq!(a.shards(), shards);
        }
    }
}

/// Hash routing is a pure function of the submission sequence number:
/// changing the wave structure (which changes price trajectories and
/// batch boundaries) never moves a job's shard.
#[test]
fn hash_routing_pins_a_jobs_shard_across_runs() {
    let instance = scenario(ScenarioKind::Diurnal, 48, 23);
    let narrow = StreamRouter {
        wave_size: 8,
        ..router(&instance, 4, RoutePolicy::HashById)
    };
    let wide = StreamRouter {
        wave_size: 16,
        ..narrow
    };
    let a = narrow.run_stepped(CllScheduler, &instance).unwrap();
    let b = wide.run_stepped(CllScheduler, &instance).unwrap();
    let shards_of = |r: &pss_serve::RoutedReport| -> Vec<(JobId, usize)> {
        r.submissions.iter().map(|s| (s.job, s.shard)).collect()
    };
    assert_eq!(shards_of(&a), shards_of(&b));
    // And the assignment is exactly the advertised pure function.
    let prices = vec![0.0; 4];
    for (seq, sub) in a.submissions.iter().enumerate() {
        assert_eq!(sub.shard, RoutePolicy::HashById.route(seq as u64, &prices));
    }
}

/// Polls `probe` until it returns true or the deadline passes.
fn wait_for(what: &str, mut probe: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !probe() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::yield_now();
    }
}

/// Hand-drives a single-shard daemon through the router's exact
/// wave-stepped protocol and config — the unsharded reference run.
fn manual_unsharded(instance: &Instance, wave_size: usize) -> ServiceReport {
    let config = ServeConfig {
        machines: instance.machines,
        alpha: instance.alpha,
        shards: 1,
        queue_capacity: 1024,
        coalesce_window: f64::INFINITY,
        max_batch: 1024,
        price_smoothing: 0.1,
        stale_tolerance: f64::INFINITY,
        start_paused: true,
        ..ServeConfig::default()
    };
    let tenants = vec![TenantSpec::new("route-0").on_shard(0).rejecting_on_price()];
    let (daemon, handles) = Daemon::spawn(PdScheduler::coarse(), config, tenants).unwrap();
    let envelopes: Vec<JobEnvelope> = arrival_envelopes(instance);
    let mut expected = 0usize;
    for wave in envelopes.chunks(wave_size) {
        let epoch = daemon.shard_idle_epoch(0);
        wait_for("the worker to park", || daemon.shard_idle_epoch(0) != epoch);
        for envelope in wave {
            match handles[0].submit(*envelope) {
                Ok(Submission::Queued { .. }) => expected += 1,
                Ok(Submission::RejectedByPrice { .. }) => {}
                other => panic!("manual submission failed: {other:?}"),
            }
        }
        daemon.resume();
        wait_for("the wave's events", || {
            daemon.shard_event_count(0) >= expected
        });
        daemon.pause();
    }
    daemon.resume();
    daemon.shutdown().unwrap()
}

/// With one shard the router is the unsharded daemon: every policy routes
/// everything to shard 0, and the deterministic fields match a hand-driven
/// run bit for bit.
#[test]
fn router_s1_matches_the_unsharded_daemon() {
    let instance = scenario(ScenarioKind::FlashCrowd, 48, 31);
    let r = router(&instance, 1, RoutePolicy::CheapestPrice);
    let routed = r.run_stepped(PdScheduler::coarse(), &instance).unwrap();
    assert!(routed.submissions.iter().all(|s| s.shard == 0));
    let manual = manual_unsharded(&instance, r.wave_size);
    assert!(
        deterministic_fields_equal(&routed.service, &manual),
        "S=1 routed run diverged from the hand-driven unsharded daemon"
    );
}

/// The merged logical schedule spans `S · machines` lanes, its energy is
/// the sum of the shard energies, and every shard schedule validates
/// against the stream its shard was actually fed.
#[test]
fn merged_schedule_adds_shard_energies_and_validates() {
    let instance = scenario(ScenarioKind::Overload, 64, 43);
    let r = router(&instance, 4, RoutePolicy::RoundRobin);
    let report = r.run_stepped(PdScheduler::coarse(), &instance).unwrap();
    assert_eq!(report.merged.machines, 4 * instance.machines);
    let shard_sum: f64 = report
        .service
        .shards
        .iter()
        .map(|s| s.schedule.energy(instance.alpha))
        .sum();
    let merged = report.merged_energy(instance.alpha);
    assert!(
        (merged - shard_sum).abs() <= 1e-9 * shard_sum.max(1.0),
        "merged energy {merged} != shard sum {shard_sum}"
    );
    for shard in &report.service.shards {
        let fed = shard
            .instance(report.service.machines, report.service.alpha)
            .unwrap();
        pss_core::prelude::validate_schedule(&fed, &shard.schedule).unwrap();
    }
    // Merged segments speak the logical id vocabulary.
    for seg in &report.merged.segments {
        if let Some(job) = seg.job {
            assert!(job.index() < instance.len(), "dangling merged id {job}");
        }
    }
}

/// The push-side peak counter sees every enqueued arrival, including depth
/// the drain-point samples can miss entirely on a paused daemon.
#[test]
fn peak_queue_depth_bounds_the_sampled_max() {
    let config = ServeConfig {
        queue_capacity: 1024,
        start_paused: true,
        ..ServeConfig::default()
    };
    let (daemon, handles) =
        Daemon::spawn(CllScheduler, config, vec![TenantSpec::new("t")]).unwrap();
    for tag in 0..6u64 {
        let release = tag as f64 * 0.1;
        handles[0]
            .submit(JobEnvelope::new(
                TenantId(0),
                tag,
                release,
                release + 1.0,
                0.2,
                1.0,
            ))
            .unwrap();
    }
    daemon.resume();
    let report = daemon.shutdown().unwrap();
    let shard = &report.shards[0];
    assert_eq!(shard.peak_queue_depth, 6);
    assert!(shard.peak_queue_depth >= shard.max_queue_depth());
    assert_eq!(report.summary().shards[0].peak_queue_depth, 6);
}

/// The free-running throughput mode ingests the whole stream, reports a
/// positive ingest rate, and still satisfies the merge identity.
#[test]
fn free_run_ingests_the_whole_stream_and_merges() {
    let instance = scenario(ScenarioKind::Diurnal, 48, 7);
    let r = router(&instance, 2, RoutePolicy::CheapestPrice);
    let report = r.run_free(CllScheduler, &instance, 7).unwrap();
    assert_eq!(report.submissions.len(), instance.len());
    assert!(report.arrivals_per_sec() > 0.0);
    assert_eq!(report.shard_loads().iter().sum::<usize>(), {
        report.submissions.iter().filter(|s| s.queued).count()
    });
    assert!(report.load_imbalance() >= 1.0 - 1e-12);
    let shard_sum: f64 = report
        .service
        .shards
        .iter()
        .map(|s| s.schedule.energy(instance.alpha))
        .sum();
    let merged = report.merged_energy(instance.alpha);
    assert!(
        (merged - shard_sum).abs() <= 1e-9 * shard_sum.max(1.0),
        "merged energy {merged} != shard sum {shard_sum}"
    );
    assert!(report.value_accepted(&instance) >= 0.0);
    assert!(report.peak_queue_depth() >= 1);
}
