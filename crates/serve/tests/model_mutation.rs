//! The mutation gate: proof that the model checker has teeth.
//!
//! The queue's correctness hinges on one store — the `Release`
//! publication of a slot's sequence number after the value write.  This
//! test first checks the intact queue passes a small handoff model, then
//! flips [`pss_serve::queue::mutation::weaken_publish`] to demote that
//! store to `Relaxed` and demands the checker *fail* (the consumer's
//! read of the slot is no longer ordered after the producer's write — a
//! data race on uninitialised memory).  If the checker ever stops
//! catching the weakened queue, this test fails CI.
//!
//! Lives in its own integration-test binary because the mutation flag is
//! process-global: nothing else may model-check queues in this process.
#![cfg(pss_model_check)]

use std::sync::Arc;

use pss_check::model::{Model, ModelRun};
use pss_serve::queue::mutation;
use pss_serve::ArrivalQueue;

/// One producer hands one value to one consumer through a fresh ring.
fn handoff_model() -> ModelRun {
    let queue: Arc<ArrivalQueue<u64>> = Arc::new(ArrivalQueue::with_capacity(2));
    let producer = Arc::clone(&queue);
    let consumer = Arc::clone(&queue);
    ModelRun {
        threads: vec![
            Box::new(move || {
                producer.push(42).expect("capacity-2 queue cannot be full");
            }),
            Box::new(move || {
                if let Some(v) = consumer.pop() {
                    assert_eq!(v, 42);
                }
            }),
        ],
        finale: Box::new(move || {
            // Drain so the Drop impl never sees a non-quiescent ring.
            while queue.pop().is_some() {}
        }),
    }
}

#[test]
fn weakened_publication_is_caught_by_the_model() {
    // Phase 1: the intact queue must pass.
    let clean = Model::new().check(handoff_model);
    assert!(
        clean.interleavings > 2,
        "suspiciously few interleavings: {clean:?}"
    );

    // Phase 2: weaken the publication store to Relaxed; the checker must
    // report the resulting race on the slot cell.
    mutation::weaken_publish(true);
    let mutated = Model::new().explore(handoff_model);
    mutation::weaken_publish(false);
    let failure = mutated
        .failure
        .expect("the Relaxed-publication mutant must be rejected by the model");
    assert!(
        failure.message.contains("race"),
        "expected a data-race report, got: {failure}"
    );

    // Phase 3: restored, the queue passes again (the flag really was the
    // only difference).
    Model::new().check(handoff_model);
}
