//! Exact optimum of the profitable scheduling problem for small instances.
//!
//! The integral program (IMP) couples a combinatorial choice — which jobs to
//! reject — with a convex continuous problem — how to schedule the kept
//! jobs with minimal energy.  For small `n` we can afford to enumerate all
//! `2^n` rejection sets and solve the continuous part exactly:
//!
//! * `m = 1`: with the independent YDS implementation,
//! * `m > 1`: with the coordinate-descent solver of `pss-convex`.
//!
//! The result is the ground-truth denominator for empirical competitive
//! ratios (experiments E3–E5) and for tests of the PD algorithm's `α^α`
//! guarantee.

use pss_convex::{solve_min_energy_with, ProgramContext, SolverOptions};
use pss_types::{num, Cost, Instance, JobId, Schedule, ScheduleError};

use crate::yds::yds_schedule;

/// Maximum instance size accepted by the brute-force search (2^20 subsets).
pub const MAX_BRUTE_FORCE_JOBS: usize = 20;

/// The exact optimum found by exhaustive search.
#[derive(Debug, Clone)]
pub struct BruteForceResult {
    /// The optimal cost (energy of the kept set + value of the rejected set).
    pub cost: Cost,
    /// The jobs rejected by the optimal solution.
    pub rejected: Vec<JobId>,
    /// An optimal schedule realising the cost.
    pub schedule: Schedule,
    /// Number of rejection sets evaluated.
    pub evaluated: usize,
}

/// Computes the exact optimum of the profitable scheduling problem by
/// enumerating rejection sets.
///
/// Returns an error if the instance has more than [`MAX_BRUTE_FORCE_JOBS`]
/// jobs (use the dual lower bound of `pss-convex` for larger instances).
pub fn brute_force_optimum(instance: &Instance) -> Result<BruteForceResult, ScheduleError> {
    brute_force_optimum_with(instance, &SolverOptions::default())
}

/// [`brute_force_optimum`] with explicit convex-solver options (used to
/// trade accuracy for speed in large sweeps).
pub fn brute_force_optimum_with(
    instance: &Instance,
    solver_opts: &SolverOptions,
) -> Result<BruteForceResult, ScheduleError> {
    let n = instance.len();
    if n > MAX_BRUTE_FORCE_JOBS {
        return Err(ScheduleError::Internal(format!(
            "brute force limited to {MAX_BRUTE_FORCE_JOBS} jobs, instance has {n}"
        )));
    }
    if n == 0 {
        return Ok(BruteForceResult {
            cost: Cost::ZERO,
            rejected: Vec::new(),
            schedule: Schedule::empty(instance.machines),
            evaluated: 1,
        });
    }

    let mut best_cost = f64::INFINITY;
    let mut best: Option<(Cost, Vec<JobId>, Schedule)> = None;
    let mut evaluated = 0usize;

    for mask in 0..(1u32 << n) {
        let kept: Vec<JobId> = (0..n).filter(|j| mask & (1 << j) != 0).map(JobId).collect();
        let rejected: Vec<JobId> = (0..n).filter(|j| mask & (1 << j) == 0).map(JobId).collect();
        let lost_value: f64 = num::stable_sum(rejected.iter().map(|j| instance.job(*j).value));
        evaluated += 1;

        // Cheap pruning: even with zero energy this mask cannot win.
        if lost_value >= best_cost {
            continue;
        }

        let (energy, schedule) = if kept.is_empty() {
            (0.0, Schedule::empty(instance.machines))
        } else {
            let sub = instance.restrict(&kept);
            let (energy, sub_schedule) = if instance.machines == 1 {
                let res = yds_schedule(&sub.jobs, sub.alpha)?;
                (res.energy, res.schedule)
            } else {
                let ctx = ProgramContext::new(&sub);
                let sol = solve_min_energy_with(&ctx, solver_opts);
                (sol.energy, ctx.realize_schedule(&sol.assignment))
            };
            // Map the sub-instance's dense ids back to the original ids.
            let mut mapped = Schedule::empty(instance.machines);
            for mut seg in sub_schedule.segments {
                if let Some(job) = seg.job {
                    seg.job = Some(kept[job.index()]);
                }
                mapped.push(seg);
            }
            (energy, mapped)
        };

        let cost = Cost::new(energy, lost_value);
        if cost.total() < best_cost {
            best_cost = cost.total();
            best = Some((cost, rejected, schedule));
        }
    }

    let (cost, rejected, schedule) = best.expect("at least one rejection set evaluated");
    Ok(BruteForceResult {
        cost,
        rejected,
        schedule,
        evaluated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_types::validate_schedule;

    #[test]
    fn rejects_job_whose_value_is_below_its_energy() {
        // One job that would need speed 10 (energy 100 with alpha=2) but is
        // worth only 1: optimal is to reject it.
        let inst = Instance::from_tuples(1, 2.0, vec![(0.0, 1.0, 10.0, 1.0)]).unwrap();
        let res = brute_force_optimum(&inst).unwrap();
        assert_eq!(res.rejected, vec![JobId(0)]);
        assert!((res.cost.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn keeps_job_whose_value_exceeds_its_energy() {
        let inst = Instance::from_tuples(1, 2.0, vec![(0.0, 1.0, 1.0, 10.0)]).unwrap();
        let res = brute_force_optimum(&inst).unwrap();
        assert!(res.rejected.is_empty());
        assert!((res.cost.total() - 1.0).abs() < 1e-9);
        let report = validate_schedule(&inst, &res.schedule).unwrap();
        assert!(report.rejected.is_empty());
    }

    #[test]
    fn mixed_instance_keeps_only_the_profitable_jobs() {
        // Two jobs competing for the same unit interval: keeping both needs
        // speed 2 (energy 4 with alpha 2).  Job 0 is valuable, job 1 cheap.
        let inst =
            Instance::from_tuples(1, 2.0, vec![(0.0, 1.0, 1.0, 100.0), (0.0, 1.0, 1.0, 0.5)])
                .unwrap();
        let res = brute_force_optimum(&inst).unwrap();
        // Options: keep both (4), keep 0 only (1 + 0.5), keep 1 only
        // (1 + 100), reject both (100.5).  Best: keep 0 only.
        assert_eq!(res.rejected, vec![JobId(1)]);
        assert!((res.cost.total() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn multiprocessor_optimum_uses_convex_solver() {
        let inst =
            Instance::from_tuples(2, 2.0, vec![(0.0, 1.0, 1.0, 10.0), (0.0, 1.0, 1.0, 10.0)])
                .unwrap();
        let res = brute_force_optimum(&inst).unwrap();
        // Each job on its own machine at speed 1: total energy 2.
        assert!(res.rejected.is_empty());
        assert!((res.cost.total() - 2.0).abs() < 1e-6);
        let report = validate_schedule(&inst, &res.schedule).unwrap();
        assert!(report.rejected.is_empty());
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::from_tuples(1, 2.0, vec![]).unwrap();
        let res = brute_force_optimum(&inst).unwrap();
        assert_eq!(res.cost.total(), 0.0);
        assert_eq!(res.evaluated, 1);
    }

    #[test]
    fn too_many_jobs_is_an_error() {
        let tuples: Vec<_> = (0..21)
            .map(|i| (i as f64, i as f64 + 1.0, 1.0, 1.0))
            .collect();
        let inst = Instance::from_tuples(1, 2.0, tuples).unwrap();
        assert!(brute_force_optimum(&inst).is_err());
    }

    #[test]
    fn optimum_never_exceeds_reject_everything_or_keep_everything() {
        let inst = Instance::from_tuples(
            1,
            3.0,
            vec![
                (0.0, 2.0, 1.0, 3.0),
                (0.5, 1.5, 0.8, 0.2),
                (1.0, 3.0, 1.2, 5.0),
            ],
        )
        .unwrap();
        let res = brute_force_optimum(&inst).unwrap();
        let reject_all = inst.total_value();
        let keep_all = yds_schedule(&inst.jobs, inst.alpha).unwrap().energy;
        assert!(res.cost.total() <= reject_all + 1e-9);
        assert!(res.cost.total() <= keep_all + 1e-9);
    }
}
