//! The Yao–Demers–Shenker (YDS) algorithm: exact energy-optimal
//! single-processor scheduling of a mandatory job set.
//!
//! YDS repeatedly finds the *critical interval* — the interval `[t1, t2)`
//! maximising the density `Σ w_j / (t2 − t1)` over the jobs whose whole
//! availability window lies inside it — schedules those jobs inside the
//! interval at exactly that density using preemptive EDF, removes both the
//! jobs and the interval from the timeline, and recurses on the remaining
//! (time-collapsed) instance.
//!
//! The implementation here is deliberately independent of the convex
//! machinery in `pss-convex` so that the two can cross-validate each other:
//! for `m = 1` the coordinate-descent solver must reproduce YDS's energy.

use pss_types::{num, Job, JobId, Schedule, ScheduleError, Segment};

/// The result of running YDS.
#[derive(Debug, Clone)]
pub struct YdsResult {
    /// The produced single-machine schedule (machine index 0).
    pub schedule: Schedule,
    /// Total energy of the schedule for the exponent it was computed with.
    pub energy: f64,
    /// The critical-interval rounds as `(start, end, speed)` triples, in the
    /// order they were peeled off (useful for inspecting the speed profile).
    pub rounds: Vec<(f64, f64, f64)>,
}

/// Runs YDS for the given jobs on a single machine with power exponent
/// `alpha`, producing an exact energy-optimal schedule that finishes every
/// job.
///
/// Values are ignored: YDS is the mandatory-completion baseline.
pub fn yds_schedule(jobs: &[Job], alpha: f64) -> Result<YdsResult, ScheduleError> {
    #[derive(Clone)]
    struct Pending {
        id: JobId,
        release: f64,
        deadline: f64,
        work: f64,
    }

    let mut pending: Vec<Pending> = jobs
        .iter()
        .map(|j| Pending {
            id: j.id,
            release: j.release,
            deadline: j.deadline,
            work: j.work,
        })
        .collect();

    let mut schedule = Schedule::empty(1);
    let mut rounds = Vec::new();
    // Collapsed→real time expansions, applied in reverse order of removal.
    let mut expansions: Vec<(f64, f64)> = Vec::new();

    while !pending.is_empty() {
        // -- Find the critical interval over all boundary pairs. ----------
        let mut boundaries: Vec<f64> = pending
            .iter()
            .flat_map(|j| [j.release, j.deadline])
            .collect();
        boundaries.sort_by(f64::total_cmp);
        boundaries.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

        let mut best: Option<(f64, f64, f64)> = None; // (t1, t2, density)
        for (i, &t1) in boundaries.iter().enumerate() {
            for &t2 in &boundaries[i + 1..] {
                let len = t2 - t1;
                if len <= 0.0 {
                    continue;
                }
                let work: f64 = pending
                    .iter()
                    .filter(|j| num::approx_ge(j.release, t1) && num::approx_le(j.deadline, t2))
                    .map(|j| j.work)
                    .sum();
                if work <= 0.0 {
                    continue;
                }
                let density = work / len;
                if best.is_none_or(|(_, _, d)| density > d + 1e-15) {
                    best = Some((t1, t2, density));
                }
            }
        }
        let Some((t1, t2, speed)) = best else {
            // No positive work left (defensive: all works zero).
            break;
        };
        rounds.push((t1, t2, speed));

        // -- Schedule the critical set inside [t1, t2) with EDF. ----------
        let critical: Vec<Job> = pending
            .iter()
            .filter(|j| num::approx_ge(j.release, t1) && num::approx_le(j.deadline, t2))
            .map(|j| Job {
                id: j.id,
                release: j.release,
                deadline: j.deadline,
                work: j.work,
                value: 0.0,
            })
            .collect();
        let segments = edf_schedule(&critical, t1, t2, speed)?;
        // The segments are in the *current* collapsed timeline; expand them
        // through every earlier removal (in reverse order) to real time.
        for seg in segments {
            for expanded in expand_segment(seg, &expansions) {
                schedule.push(expanded);
            }
        }

        // -- Remove the critical jobs and collapse [t1, t2). --------------
        pending.retain(|j| !(num::approx_ge(j.release, t1) && num::approx_le(j.deadline, t2)));
        let gap = t2 - t1;
        for j in &mut pending {
            j.release = collapse_time(j.release, t1, t2, gap);
            j.deadline = collapse_time(j.deadline, t1, t2, gap);
            if j.deadline <= j.release {
                return Err(ScheduleError::Internal(format!(
                    "YDS collapsed job {} to an empty window",
                    j.id
                )));
            }
        }
        // Later rounds produce segments in a timeline from which [t1, t2)
        // has been removed; record the expansion so their segments can be
        // mapped back.  Expansions recorded earlier refer to *later*
        // collapse steps and must be applied first when expanding.
        expansions.insert(0, (t1, t2));
    }

    let energy = schedule.energy(alpha);
    Ok(YdsResult {
        schedule,
        energy,
        rounds,
    })
}

fn collapse_time(t: f64, t1: f64, t2: f64, gap: f64) -> f64 {
    if t >= t2 {
        t - gap
    } else if t > t1 {
        t1
    } else {
        t
    }
}

/// Expands a segment from a collapsed timeline back to real time, applying
/// the recorded removals oldest-last (i.e. in the order given).
fn expand_segment(seg: Segment, expansions: &[(f64, f64)]) -> Vec<Segment> {
    let mut pieces = vec![seg];
    for &(t1, t2) in expansions {
        let gap = t2 - t1;
        let mut next = Vec::with_capacity(pieces.len());
        for p in pieces {
            if p.end <= t1 + 1e-15 {
                next.push(p);
            } else if p.start >= t1 - 1e-15 {
                next.push(Segment {
                    start: p.start + gap,
                    end: p.end + gap,
                    ..p
                });
            } else {
                // The segment straddles the removed gap: split it.
                next.push(Segment {
                    start: p.start,
                    end: t1,
                    ..p
                });
                next.push(Segment {
                    start: t2,
                    end: p.end + gap,
                    ..p
                });
            }
        }
        pieces = next;
    }
    pieces
}

/// Preemptive earliest-deadline-first scheduling of `jobs` inside
/// `[window_start, window_end)` at the constant speed `speed` on machine 0.
///
/// Every job's availability window must lie inside the window, and the
/// total work must equal `speed · (window_end − window_start)` up to
/// tolerance for the schedule to finish everything — both are guaranteed
/// when called on a YDS critical interval.  Returns an error if some job
/// cannot be finished by its deadline (which would indicate a bug in the
/// critical-interval computation).
pub fn edf_schedule(
    jobs: &[Job],
    window_start: f64,
    window_end: f64,
    speed: f64,
) -> Result<Vec<Segment>, ScheduleError> {
    if speed <= 0.0 {
        return Ok(Vec::new());
    }
    let mut remaining: Vec<f64> = jobs.iter().map(|j| j.work).collect();
    let mut segments = Vec::new();
    let mut now = window_start;

    while now < window_end - 1e-12 {
        // Jobs released and unfinished.
        let mut candidates: Vec<usize> = (0..jobs.len())
            .filter(|&i| num::approx_le(jobs[i].release, now) && remaining[i] > 1e-12)
            .collect();
        candidates.sort_by(|&a, &b| {
            jobs[a]
                .deadline
                .total_cmp(&jobs[b].deadline)
                .then(jobs[a].id.cmp(&jobs[b].id))
        });

        // Next event: the earliest future release (or the window end).
        let next_release = jobs
            .iter()
            .enumerate()
            .filter(|(i, j)| j.release > now + 1e-12 && remaining[*i] > 1e-12)
            .map(|(_, j)| j.release)
            .fold(window_end, f64::min);

        let Some(&run) = candidates.first() else {
            // Idle until the next release.
            now = next_release;
            continue;
        };

        let time_to_finish = remaining[run] / speed;
        let end = (now + time_to_finish).min(next_release).min(window_end);
        if end <= now + 1e-15 {
            // The candidate's residual work is too small to advance time at
            // this magnitude (a floating-point leftover of an earlier
            // subtraction, possible when `now` is large and one ulp exceeds
            // the residual's duration): consider the job finished and pick
            // the next candidate.  Idling to the next release here instead —
            // the previous behaviour — silently skipped the rest of the
            // critical interval and starved every remaining job.
            remaining[run] = 0.0;
            continue;
        }
        segments.push(Segment::work(0, now, end, speed, jobs[run].id));
        remaining[run] -= speed * (end - now);
        now = end;
    }

    // Everything must be finished (YDS critical interval invariant).
    for (i, rem) in remaining.iter().enumerate() {
        if *rem > 1e-6 * jobs[i].work.max(1.0) {
            return Err(ScheduleError::Internal(format!(
                "EDF failed to finish job {} inside the critical interval ({} work left)",
                jobs[i].id, rem
            )));
        }
    }
    Ok(merge_adjacent(segments))
}

/// Merges adjacent segments of the same job and speed (cosmetic, keeps the
/// schedule small).
fn merge_adjacent(segments: Vec<Segment>) -> Vec<Segment> {
    let mut merged: Vec<Segment> = Vec::with_capacity(segments.len());
    for seg in segments {
        if let Some(last) = merged.last_mut() {
            if last.job == seg.job
                && last.machine == seg.machine
                && num::approx_eq(last.end, seg.start)
                && num::approx_eq(last.speed, seg.speed)
            {
                last.end = seg.end;
                continue;
            }
        }
        merged.push(seg);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_types::{validate_schedule, Instance};

    fn run(tuples: Vec<(f64, f64, f64, f64)>, alpha: f64) -> (Instance, YdsResult) {
        let inst = Instance::from_tuples(1, alpha, tuples).unwrap();
        let res = yds_schedule(&inst.jobs, alpha).unwrap();
        (inst, res)
    }

    #[test]
    fn single_job_runs_at_density() {
        let (inst, res) = run(vec![(0.0, 4.0, 2.0, 1.0)], 3.0);
        assert!((res.energy - 0.5).abs() < 1e-9);
        let report = validate_schedule(&inst, &res.schedule).unwrap();
        assert!(report.rejected.is_empty());
        assert_eq!(res.rounds.len(), 1);
        assert!((res.rounds[0].2 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nested_jobs_classic_example() {
        // Job 0: [0,4) work 2; job 1: [1,2) work 2.  Critical interval
        // [1,2) at speed 2, then job 0 at speed 2/3 on the remaining 3 units.
        let (inst, res) = run(vec![(0.0, 4.0, 2.0, 1.0), (1.0, 2.0, 2.0, 1.0)], 2.0);
        let expected = 4.0 + 3.0 * (2.0f64 / 3.0).powi(2);
        assert!(
            (res.energy - expected).abs() < 1e-9,
            "energy {}",
            res.energy
        );
        let report = validate_schedule(&inst, &res.schedule).unwrap();
        assert!(report.rejected.is_empty());
        assert_eq!(res.rounds.len(), 2);
        assert!((res.rounds[0].2 - 2.0).abs() < 1e-12);
        assert!((res.rounds[1].2 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_jobs_each_run_at_their_density() {
        let (inst, res) = run(vec![(0.0, 1.0, 2.0, 1.0), (2.0, 4.0, 1.0, 1.0)], 2.0);
        let expected = 4.0 + 0.5;
        assert!((res.energy - expected).abs() < 1e-9);
        assert!(validate_schedule(&inst, &res.schedule)
            .unwrap()
            .rejected
            .is_empty());
    }

    #[test]
    fn staircase_instance_runs_every_job_to_completion() {
        // The Bansal–Kimbrel–Pruhs staircase used for the lower bound.
        let n = 6;
        let alpha = 2.0;
        let tuples: Vec<(f64, f64, f64, f64)> = (1..=n)
            .map(|j| {
                (
                    (j - 1) as f64,
                    n as f64,
                    ((n - j + 1) as f64).powf(-1.0 / alpha),
                    1.0,
                )
            })
            .collect();
        let (inst, res) = run(tuples, alpha);
        let report = validate_schedule(&inst, &res.schedule).unwrap();
        assert!(report.rejected.is_empty());
        assert!(res.energy > 0.0);
    }

    #[test]
    fn empty_job_set_is_trivial() {
        let res = yds_schedule(&[], 2.0).unwrap();
        assert_eq!(res.energy, 0.0);
        assert!(res.schedule.segments.is_empty());
    }

    #[test]
    fn edf_respects_release_times() {
        // Job 1 released mid-window with an earlier deadline preempts job 0.
        let jobs = vec![
            Job::new(0, 0.0, 4.0, 2.25, 0.0),
            Job::new(1, 1.0, 2.0, 0.75, 0.0),
        ];
        let segs = edf_schedule(&jobs, 0.0, 4.0, 0.75).unwrap();
        // Total work 3 at speed 0.75 over 4 time units: exactly fits.
        let total: f64 = segs.iter().map(|s| s.work_amount()).sum();
        assert!((total - 3.0).abs() < 1e-9);
        // Job 1's work must be inside [1, 2).
        for s in segs.iter().filter(|s| s.job == Some(JobId(1))) {
            assert!(s.start >= 1.0 - 1e-9 && s.end <= 2.0 + 1e-9);
        }
    }

    #[test]
    #[allow(clippy::excessive_precision, clippy::inconsistent_digit_grouping)]
    fn edf_survives_sub_ulp_residuals_at_large_times() {
        // Regression (found by the 10k-arrival streaming workload): at
        // t ≈ 1566 one ulp is ~2.3e-13, so the floating-point residual left
        // by an earlier subtraction (~1e-12 work at speed ~9.5) produces a
        // sub-ulp segment.  The old degenerate-segment branch then idled to
        // the next release — the window end — silently starving every other
        // job of the critical interval.  The constants reproduce the exact
        // bit patterns of the failing replanning step.
        let t1 = 1565.992649881082116;
        let t2 = 1566.580202953283788;
        let speed = 9.487418057804181;
        let jobs = vec![
            Job::new(2, t1, 1566.5802029532837878, 1.0707206072158386, 0.0),
            Job::new(5, t1, 1566.5412635628106273, 1.8758482289616536, 0.0),
            Job::new(6, t1, 1566.3074796866567340, 1.1297497073571297, 0.0),
            Job::new(7, t1, 1566.4426985902682645, 1.4980430835898433, 0.0),
        ];
        let segs = edf_schedule(&jobs, t1, t2, speed).expect("EDF at large time offsets");
        let total: f64 = segs.iter().map(|s| s.work_amount()).sum();
        let expected: f64 = jobs.iter().map(|j| j.work).sum();
        assert!(
            (total - expected).abs() < 1e-6,
            "total {total} vs {expected}"
        );
    }

    #[test]
    fn edf_reports_infeasible_input() {
        // Deliberately too slow a speed: EDF cannot finish.
        let jobs = vec![Job::new(0, 0.0, 1.0, 2.0, 0.0)];
        assert!(edf_schedule(&jobs, 0.0, 1.0, 1.0).is_err());
    }

    #[test]
    fn yds_energy_is_no_worse_than_naive_average_rate() {
        // AVR (each job at its own density) is feasible, so YDS must not use
        // more energy.
        let tuples = vec![
            (0.0, 3.0, 2.0, 1.0),
            (1.0, 4.0, 1.0, 1.0),
            (2.0, 6.0, 2.0, 1.0),
            (0.5, 2.0, 0.7, 1.0),
        ];
        let alpha = 2.5;
        let (inst, res) = run(tuples, alpha);
        // AVR energy: integrate (sum of densities)^alpha over time via fine
        // sampling.
        let (lo, hi) = inst.horizon();
        let samples = 20_000;
        let dt = (hi - lo) / samples as f64;
        let mut avr_energy = 0.0;
        for i in 0..samples {
            let t = lo + (i as f64 + 0.5) * dt;
            let s: f64 = inst
                .jobs
                .iter()
                .filter(|j| j.available_at(t))
                .map(|j| j.density())
                .sum();
            avr_energy += s.powf(alpha) * dt;
        }
        assert!(res.energy <= avr_energy + 1e-6);
    }
}
