//! Warm-started YDS for the left-aligned replanning subproblem.
//!
//! The plan-revision online algorithms (OA, qOA, CLL) re-solve YDS at every
//! arrival over the *remaining* work of the pending jobs.  At replanning
//! time `t` every pending job has already been released, so its effective
//! window is `[t, d_j)` — all windows share the left endpoint `t`.  For this
//! left-aligned special case YDS collapses to a closed form:
//!
//! 1. sort the jobs by deadline,
//! 2. take cumulative remaining works `W_i`,
//! 3. the optimal speed profile is the **concave majorant** of the points
//!    `(d_i, W_i)` anchored at `(t, 0)`: a staircase of decreasing speeds
//!    whose steps are exactly the critical intervals YDS would peel off, and
//! 4. within each step the jobs run back to back in EDF (deadline) order,
//!    each to completion — which is what YDS's per-round EDF does when every
//!    job is already released.
//!
//! This replaces the `O(k³)` general critical-interval search of
//! [`yds_schedule`](crate::yds::yds_schedule) by an `O(k log k)` geometric
//! computation that produces the same schedule (verified against the general
//! algorithm in the tests below and by the `incremental_equivalence`
//! integration tests).
//!
//! [`IncrementalYds`] is the warm-started form: it keeps the deadline-sorted
//! order across replans, so consecutive plans — which differ by one arrival
//! and by the executed prefix — cost an allocation-free `O(k)` merge +
//! majorant pass instead of a fresh sort.  This is the "reuse the previous
//! solution, re-solve only what the new job perturbs" entry point used by
//! the replanning executor in `pss-baselines`.

use pss_types::snapshot::{BlobReader, BlobWriter, SnapshotError, SnapshotPart};
use pss_types::{JobId, Schedule, ScheduleError, Segment};

/// A pending job as seen by the left-aligned planner.
///
/// In the produced plan, segment job ids are the items' **positions**
/// (`JobId(i)` refers to `items[i]`) — the dense-id convention of the
/// replanning executor.  The `key` is only the *warm-start identity*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanItem {
    /// Stable caller-chosen identity (e.g. the job's original id).  Keys
    /// must be unique per call and stable across calls for warm starting to
    /// engage; they also break deadline ties deterministically.
    pub key: usize,
    /// Deadline `d_j` (must lie after the planning time).
    pub deadline: f64,
    /// Remaining work (non-negative).
    pub work: f64,
}

/// Computes the left-aligned YDS plan at time `now` from scratch.
///
/// Equivalent to `yds_schedule` on jobs `(release = now, deadline, work)`
/// but `O(k log k)` instead of `O(k³)`.  Used as the one-shot entry point
/// (e.g. by CLL's admission rule); the replanning executor uses the
/// warm-started [`IncrementalYds`] instead.
pub fn left_aligned_plan(now: f64, items: &[PlanItem]) -> Result<Schedule, ScheduleError> {
    IncrementalYds::default().plan(now, items)
}

/// The maximum speed the left-aligned YDS plan at `now` assigns to
/// `items[item]` (0 if the item has no work).  This is what CLL's admission
/// rule needs: the speed OA would plan the new job at.
pub fn left_aligned_planned_speed(
    now: f64,
    items: &[PlanItem],
    item: usize,
) -> Result<f64, ScheduleError> {
    let plan = left_aligned_plan(now, items)?;
    Ok(plan
        .segments
        .iter()
        .filter(|s| s.job == Some(JobId(item)))
        .map(|s| s.speed)
        .fold(0.0_f64, f64::max))
}

/// Per-key scratch slot of [`IncrementalYds`]; `generation` stamps which
/// plan call the slot belongs to, so the table never needs clearing.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    deadline: f64,
    work: f64,
    /// Position of the item in this call's `items` slice.
    position: u32,
    generation: u64,
    /// Whether the cached order already contains this key (set during the
    /// prune pass).
    in_order: bool,
}

/// Warm-started left-aligned YDS: one instance per run of a replanning
/// algorithm, fed the current pending set at every arrival.
///
/// The cached state is the deadline-sorted job order (keyed by the items'
/// stable `key`s).  Each call prunes the jobs that finished or expired since
/// the previous plan, merges the (few — typically one) newly arrived jobs
/// into the order, and recomputes the concave majorant over the up-to-date
/// remaining works.  Works and the planning time change every call (the
/// executor runs the previous plan between arrivals), but by OA's structural
/// invariant the staircase only changes where the new job perturbs it — the
/// majorant pass over the cached order re-derives exactly the perturbed
/// staircase without ever re-sorting or re-searching critical intervals.
#[derive(Debug, Clone, Default)]
pub struct IncrementalYds {
    /// `(deadline, key)` sorted by `(deadline, key)`; survives across plans.
    order: Vec<(f64, usize)>,
    /// Generation-stamped per-key scratch, grown to the largest key seen.
    slots: Vec<Slot>,
    generation: u64,
}

impl IncrementalYds {
    /// Plans the remaining work of `items` starting at `now` on machine 0;
    /// segment job ids are item positions (`JobId(i)` for `items[i]`).
    ///
    /// Every item's deadline must lie after `now` and keys must be unique;
    /// violations return an error.  The produced schedule finishes every
    /// item by its deadline and its energy is the single-machine optimum for
    /// the left-aligned instance.
    pub fn plan(&mut self, now: f64, items: &[PlanItem]) -> Result<Schedule, ScheduleError> {
        self.generation += 1;
        let generation = self.generation;
        for (i, it) in items.iter().enumerate() {
            if !(it.deadline.is_finite() && it.work.is_finite() && it.work >= 0.0) {
                return Err(ScheduleError::Internal(format!(
                    "left-aligned YDS: item {} has non-finite deadline/work",
                    it.key
                )));
            }
            if it.deadline <= now {
                return Err(ScheduleError::Internal(format!(
                    "left-aligned YDS: item {} expired (deadline {} <= now {now})",
                    it.key, it.deadline
                )));
            }
            if it.key >= self.slots.len() {
                self.slots.resize(it.key + 1, Slot::default());
            }
            let slot = &mut self.slots[it.key];
            if slot.generation == generation {
                return Err(ScheduleError::Internal(format!(
                    "left-aligned YDS: duplicate item key {}",
                    it.key
                )));
            }
            *slot = Slot {
                deadline: it.deadline,
                work: it.work,
                position: i as u32,
                generation,
                in_order: false,
            };
        }

        // Prune entries whose job finished/expired since the previous plan
        // (deadlines never change, so a key match with a different deadline
        // means the key was recycled — treat it as fresh).  A key with no
        // slot at all can only come from a restored snapshot whose job has
        // since finished; it is pruned like any other stale entry.
        let slots = &mut self.slots;
        self.order.retain(|&(d, key)| {
            let Some(slot) = slots.get_mut(key) else {
                return false;
            };
            if slot.generation == generation && slot.deadline == d {
                slot.in_order = true;
                true
            } else {
                false
            }
        });
        // Merge the newly arrived items into the sorted order.
        if self.order.len() < items.len() {
            for it in items {
                if self.slots[it.key].in_order {
                    continue;
                }
                let pos = self
                    .order
                    .partition_point(|&(d, k)| match d.total_cmp(&it.deadline) {
                        std::cmp::Ordering::Less => true,
                        std::cmp::Ordering::Greater => false,
                        std::cmp::Ordering::Equal => k < it.key,
                    });
                self.order.insert(pos, (it.deadline, it.key));
            }
        }
        debug_assert_eq!(self.order.len(), items.len());

        let k = self.order.len();
        let mut schedule = Schedule::empty(1);
        if k == 0 {
            return Ok(schedule);
        }

        // Cumulative remaining work along the deadline order.
        let mut cum = Vec::with_capacity(k);
        let mut acc = 0.0_f64;
        for &(_, key) in &self.order {
            acc += self.slots[key].work;
            cum.push(acc);
        }

        // Concave majorant of the points (d_i, cum_i) anchored at (now, 0):
        // a monotone chain keeping the breakpoints where the slope strictly
        // decreases.  Division-free turn test, so equal deadlines (vertical
        // stretches) and collinear runs are handled exactly: the dominated
        // point is popped.
        let mut stack: Vec<usize> = Vec::with_capacity(k);
        for i in 0..k {
            let d_i = self.order[i].0;
            while let Some(&top) = stack.last() {
                let d_t = self.order[top].0;
                let (pd, pw) = match stack.len().checked_sub(2) {
                    Some(j) => (self.order[stack[j]].0, cum[stack[j]]),
                    None => (now, 0.0),
                };
                // Keep `top` only if slope(prev→top) > slope(top→i).
                let lhs = (cum[top] - pw) * (d_i - d_t);
                let rhs = (cum[i] - cum[top]) * (d_t - pd);
                if lhs > rhs {
                    break;
                }
                stack.pop();
            }
            stack.push(i);
        }

        // Emit the staircase: each majorant step runs its jobs back to back
        // in deadline order at the step's slope.
        let mut t = now;
        let mut first = 0usize;
        let (mut prev_d, mut prev_w) = (now, 0.0_f64);
        for &bp in &stack {
            let d_bp = self.order[bp].0;
            let step_work = cum[bp] - prev_w;
            let speed = step_work / (d_bp - prev_d);
            if speed > 0.0 {
                for &(_, key) in &self.order[first..=bp] {
                    let slot = &self.slots[key];
                    if slot.work <= 0.0 {
                        continue;
                    }
                    let dur = slot.work / speed;
                    schedule.push(Segment::work(
                        0,
                        t,
                        t + dur,
                        speed,
                        JobId(slot.position as usize),
                    ));
                    t += dur;
                }
            }
            prev_d = d_bp;
            prev_w = cum[bp];
            first = bp + 1;
        }
        Ok(schedule)
    }
}

impl SnapshotPart for IncrementalYds {
    fn encode(&self, w: &mut BlobWriter) {
        // Only the deadline-sorted order is live warm state: the slot table
        // is generation-stamped per-call scratch (every `plan` call rewrites
        // the slots of the keys it sees before the order is consulted), so a
        // restore with fresh slots and generation 0 plans bit-identically.
        w.write_seq(&self.order);
    }

    fn decode(r: &mut BlobReader<'_>) -> Result<Self, SnapshotError> {
        // The slot table regrows lazily as keys reappear in `plan` calls
        // (generation 0 means every slot is stale, exactly like a fresh
        // warm state whose order was pre-seeded).
        Ok(Self {
            order: r.read_seq()?,
            slots: Vec::new(),
            generation: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::yds::yds_schedule;
    use pss_types::Job;

    /// xoshiro-free deterministic pseudo-random stream for the tests.
    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 11) as f64) / ((1u64 << 53) as f64)
    }

    fn assert_matches_generic(now: f64, items: &[PlanItem]) {
        let fast = left_aligned_plan(now, items).expect("fast plan");
        // The generic reference sees the same items with position ids.
        let jobs: Vec<Job> = items
            .iter()
            .enumerate()
            .map(|(i, it)| Job::new(i, now, it.deadline, it.work.max(1e-15), 0.0))
            .collect();
        let generic = yds_schedule(&jobs, 2.0).expect("generic YDS").schedule;
        // Same per-job work...
        let fw = fast.work_per_job(items.len());
        let gw = generic.work_per_job(items.len());
        for (i, it) in items.iter().enumerate() {
            assert!(
                (fw[i] - gw[i]).abs() < 1e-9 * it.work.max(1.0),
                "work differs for item {i}: fast {} vs generic {}",
                fw[i],
                gw[i]
            );
        }
        // ...and the same speed profile.
        let hi = items.iter().map(|it| it.deadline).fold(now, f64::max);
        for s in 0..200 {
            let t = now + (s as f64 + 0.5) * (hi - now) / 200.0;
            let a = fast.total_speed_at(t);
            let b = generic.total_speed_at(t);
            assert!(
                (a - b).abs() < 1e-9 * b.max(1.0),
                "profiles differ at t={t}: fast {a} vs generic {b}"
            );
        }
    }

    #[test]
    fn single_item_runs_at_its_density() {
        let plan = left_aligned_plan(
            1.0,
            &[PlanItem {
                key: 3,
                deadline: 5.0,
                work: 2.0,
            }],
        )
        .unwrap();
        assert_eq!(plan.segments.len(), 1);
        let s = plan.segments[0];
        assert_eq!(s.job, Some(JobId(0)), "ids are item positions");
        assert!((s.speed - 0.5).abs() < 1e-12);
        assert!((s.start - 1.0).abs() < 1e-12 && (s.end - 5.0).abs() < 1e-12);
    }

    #[test]
    fn staircase_speeds_decrease_and_meet_deadlines() {
        let items = vec![
            PlanItem {
                key: 0,
                deadline: 1.0,
                work: 2.0,
            },
            PlanItem {
                key: 1,
                deadline: 4.0,
                work: 1.0,
            },
            PlanItem {
                key: 2,
                deadline: 2.0,
                work: 0.5,
            },
        ];
        let plan = left_aligned_plan(0.0, &items).unwrap();
        let mut prev = f64::INFINITY;
        for seg in &plan.segments {
            assert!(seg.speed <= prev + 1e-12, "speeds increased");
            prev = seg.speed;
        }
        for (i, it) in items.iter().enumerate() {
            let finish = plan
                .segments
                .iter()
                .filter(|s| s.job == Some(JobId(i)))
                .map(|s| s.end)
                .fold(0.0, f64::max);
            assert!(finish <= it.deadline + 1e-9, "item {i} misses deadline");
        }
    }

    #[test]
    fn matches_generic_yds_on_random_left_aligned_sets() {
        let mut state = 99u64;
        for round in 0..30 {
            let now = lcg(&mut state) * 10.0;
            let k = 1 + (round % 9);
            let items: Vec<PlanItem> = (0..k)
                .map(|i| PlanItem {
                    key: i,
                    deadline: now + 0.1 + 6.0 * lcg(&mut state),
                    work: 0.05 + 2.0 * lcg(&mut state),
                })
                .collect();
            assert_matches_generic(now, &items);
        }
    }

    #[test]
    fn matches_generic_yds_with_tied_deadlines_and_tiny_works() {
        let items = vec![
            PlanItem {
                key: 0,
                deadline: 2.0,
                work: 1.0,
            },
            PlanItem {
                key: 1,
                deadline: 2.0,
                work: 1e-11,
            },
            PlanItem {
                key: 2,
                deadline: 3.0,
                work: 1e-11,
            },
            PlanItem {
                key: 3,
                deadline: 3.0,
                work: 0.5,
            },
        ];
        assert_matches_generic(0.5, &items);
    }

    #[test]
    fn warm_start_matches_from_scratch_across_replans() {
        let mut warm = IncrementalYds::default();
        let mut state = 7u64;
        let mut items: Vec<PlanItem> = Vec::new();
        let mut now = 0.0;
        for round in 0..40 {
            now += 0.2 * lcg(&mut state);
            // Simulate executed work and expiry between replans.
            items.retain(|it| it.deadline > now + 1e-9);
            for it in &mut items {
                it.work = (it.work - 0.05 * lcg(&mut state)).max(1e-6);
            }
            items.push(PlanItem {
                key: 100 + round,
                deadline: now + 0.3 + 4.0 * lcg(&mut state),
                work: 0.1 + 1.5 * lcg(&mut state),
            });
            let warm_plan = warm.plan(now, &items).expect("warm plan");
            let cold_plan = left_aligned_plan(now, &items).expect("cold plan");
            assert_eq!(
                warm_plan.segments.len(),
                cold_plan.segments.len(),
                "round {round}: segment counts differ"
            );
            for (a, b) in warm_plan.segments.iter().zip(&cold_plan.segments) {
                assert_eq!(a.job, b.job, "round {round}");
                assert!((a.speed - b.speed).abs() < 1e-12, "round {round}");
                assert!((a.start - b.start).abs() < 1e-12, "round {round}");
                assert!((a.end - b.end).abs() < 1e-12, "round {round}");
            }
        }
    }

    #[test]
    fn expired_items_and_duplicate_keys_are_rejected() {
        assert!(left_aligned_plan(
            1.0,
            &[PlanItem {
                key: 0,
                deadline: 0.5,
                work: 1.0
            }]
        )
        .is_err());
        assert!(left_aligned_plan(
            0.0,
            &[
                PlanItem {
                    key: 0,
                    deadline: 1.0,
                    work: 1.0
                },
                PlanItem {
                    key: 0,
                    deadline: 2.0,
                    work: 1.0
                },
            ]
        )
        .is_err());
    }

    #[test]
    fn planned_speed_reports_the_items_step_speed() {
        // Item 0 forces speed 2 in [0,1); item 1's step runs at 0.5.
        let items = vec![
            PlanItem {
                key: 0,
                deadline: 1.0,
                work: 2.0,
            },
            PlanItem {
                key: 1,
                deadline: 3.0,
                work: 1.0,
            },
        ];
        let s0 = left_aligned_planned_speed(0.0, &items, 0).unwrap();
        let s1 = left_aligned_planned_speed(0.0, &items, 1).unwrap();
        assert!((s0 - 2.0).abs() < 1e-12);
        assert!((s1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_plan_is_empty() {
        let plan = left_aligned_plan(0.0, &[]).unwrap();
        assert!(plan.segments.is_empty());
    }
}
