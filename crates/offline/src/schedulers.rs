//! [`Scheduler`] wrappers around the offline algorithms.

use pss_convex::{solve_min_energy_with, ProgramContext, SolverOptions};
use pss_types::{Instance, Schedule, ScheduleError, Scheduler};

use crate::brute::brute_force_optimum;
use crate::yds::yds_schedule;

/// The Yao–Demers–Shenker offline optimum for a single machine, finishing
/// every job (values are ignored).
///
/// Returns an error when asked to schedule a multi-machine instance; use
/// [`MinEnergyScheduler`] there.
#[derive(Debug, Clone, Copy, Default)]
pub struct YdsScheduler;

impl Scheduler for YdsScheduler {
    fn name(&self) -> String {
        "YDS".into()
    }

    fn schedule(&self, instance: &Instance) -> Result<Schedule, ScheduleError> {
        if instance.machines != 1 {
            return Err(ScheduleError::Internal(
                "YDS is a single-machine algorithm; use MinEnergyScheduler for m > 1".into(),
            ));
        }
        yds_schedule(&instance.jobs, instance.alpha).map(|r| r.schedule)
    }
}

/// The multiprocessor offline energy optimum for mandatory completion
/// (values are ignored), computed by coordinate descent on the convex
/// program and realised with Chen et al.'s per-interval algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinEnergyScheduler {
    /// Convex-solver options.
    pub options: SolverOptions,
}

impl Scheduler for MinEnergyScheduler {
    fn name(&self) -> String {
        "OPT-energy".into()
    }

    fn schedule(&self, instance: &Instance) -> Result<Schedule, ScheduleError> {
        let ctx = ProgramContext::new(instance);
        let sol = solve_min_energy_with(&ctx, &self.options);
        Ok(ctx.realize_schedule(&sol.assignment))
    }
}

/// The exact optimum of the profitable problem (with rejection) for small
/// instances, by exhaustive search over rejection sets.
#[derive(Debug, Clone, Copy, Default)]
pub struct BruteForceScheduler;

impl Scheduler for BruteForceScheduler {
    fn name(&self) -> String {
        "OPT".into()
    }

    fn schedule(&self, instance: &Instance) -> Result<Schedule, ScheduleError> {
        brute_force_optimum(instance).map(|r| r.schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_types::validate_schedule;

    fn sample(m: usize) -> Instance {
        Instance::from_tuples(m, 2.0, vec![(0.0, 2.0, 1.0, 10.0), (0.5, 1.5, 0.5, 10.0)]).unwrap()
    }

    #[test]
    fn yds_scheduler_finishes_everything_on_one_machine() {
        let inst = sample(1);
        let s = YdsScheduler.schedule(&inst).unwrap();
        assert!(validate_schedule(&inst, &s).unwrap().rejected.is_empty());
        assert_eq!(YdsScheduler.name(), "YDS");
    }

    #[test]
    fn yds_scheduler_rejects_multiprocessor_instances() {
        let inst = sample(2);
        assert!(YdsScheduler.schedule(&inst).is_err());
    }

    #[test]
    fn min_energy_scheduler_matches_yds_on_one_machine() {
        let inst = sample(1);
        let yds = YdsScheduler.schedule(&inst).unwrap();
        let cvx = MinEnergyScheduler::default().schedule(&inst).unwrap();
        let e_yds = yds.cost(&inst).energy;
        let e_cvx = cvx.cost(&inst).energy;
        assert!(
            (e_yds - e_cvx).abs() < 1e-5 * e_yds.max(1.0),
            "YDS {e_yds} vs convex {e_cvx}"
        );
    }

    #[test]
    fn min_energy_scheduler_handles_multiple_machines() {
        let inst = sample(2);
        let s = MinEnergyScheduler::default().schedule(&inst).unwrap();
        let report = validate_schedule(&inst, &s).unwrap();
        assert!(report.rejected.is_empty());
    }

    #[test]
    fn brute_force_scheduler_produces_valid_schedules() {
        let inst = Instance::from_tuples(1, 2.0, vec![(0.0, 1.0, 3.0, 0.5), (0.0, 2.0, 1.0, 50.0)])
            .unwrap();
        let s = BruteForceScheduler.schedule(&inst).unwrap();
        let report = validate_schedule(&inst, &s).unwrap();
        // The expensive low-value job should be rejected.
        assert_eq!(report.rejected, vec![pss_types::JobId(0)]);
    }
}
