//! # pss-offline
//!
//! Offline reference algorithms used as competitive-ratio denominators and
//! as building blocks of the online baselines:
//!
//! * [`yds`] — the classical Yao–Demers–Shenker algorithm: the exact
//!   energy-optimal single-processor schedule for a mandatory job set,
//!   implemented independently of the convex machinery (and cross-validated
//!   against it in tests).  Includes the preemptive-EDF sub-scheduler used
//!   inside critical intervals.
//! * [`incremental`] — the warm-started left-aligned YDS special case used
//!   by the online replanning executor: at replanning time every pending
//!   job's window starts "now", which collapses YDS to a concave-majorant
//!   staircase computable in `O(k log k)` (amortised `O(k)` across
//!   arrivals via [`IncrementalYds`]).
//! * [`brute`] — the exact optimum of the *profitable* problem for small
//!   instances: exhaustive search over rejection sets, with the energy of
//!   each kept set computed by YDS (`m = 1`) or the convex coordinate
//!   descent solver (`m > 1`).
//! * [`schedulers`] — [`Scheduler`](pss_types::Scheduler) wrappers:
//!   [`schedulers::YdsScheduler`],
//!   [`schedulers::MinEnergyScheduler`] (multiprocessor,
//!   finish everything) and
//!   [`schedulers::BruteForceScheduler`] (exact optimum
//!   with rejection).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod brute;
pub mod incremental;
pub mod schedulers;
pub mod yds;

pub use brute::{brute_force_optimum, BruteForceResult};
pub use incremental::{left_aligned_plan, left_aligned_planned_speed, IncrementalYds, PlanItem};
pub use schedulers::{BruteForceScheduler, MinEnergyScheduler, YdsScheduler};
pub use yds::{edf_schedule, yds_schedule, YdsResult};
