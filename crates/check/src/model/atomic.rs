//! Model-checked atomic types.
//!
//! Each atomic created while a model execution is active (i.e. from the
//! harness's setup closure or from a model thread) registers itself with
//! that execution and routes every operation through the controlled
//! scheduler, which explores both interleavings and the set of values a
//! weakly-ordered load may return.
//!
//! Atomics created *outside* an execution — or touched by OS threads
//! that do not belong to one — fall back to a plain `std` atomic
//! ("mirror" mode), so a `--cfg pss_model_check` build of a consumer
//! crate still runs its non-model code correctly.  Modeled operations
//! keep the mirror up to date so a late fallback access observes a
//! plausible value.
//!
//! Orderings are interpreted C11-style with two simplifications, both
//! *strengthenings* (they can hide no bug that the real semantics
//! forbid... but may miss exotic ones, documented here): `SeqCst` is
//! treated as `AcqRel` (no total order beyond coherence), and a failed
//! `compare_exchange` reads the latest store rather than a stale one.

use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering};
use std::sync::Arc;

use super::exec::{current_ctx, Execution};

fn load_acquires(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

fn store_releases(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

/// The untyped core: an optional execution registration plus the mirror.
struct ModelAtomic {
    model: Option<(Arc<Execution>, usize)>,
    mirror: StdAtomicU64,
}

impl ModelAtomic {
    fn new(init: u64) -> Self {
        let model = current_ctx().map(|ctx| {
            let id = ctx.exec.register_atomic(init);
            (ctx.exec, id)
        });
        Self {
            model,
            mirror: StdAtomicU64::new(init),
        }
    }

    /// Routes to the model only when the calling thread belongs to the
    /// same execution this atomic was registered with.
    fn route(&self) -> Option<(&Arc<Execution>, usize, usize)> {
        let (exec, id) = self.model.as_ref()?;
        let ctx = current_ctx()?;
        Arc::ptr_eq(&ctx.exec, exec).then_some((exec, *id, ctx.tid))
    }

    fn load(&self, order: Ordering) -> u64 {
        match self.route() {
            Some((exec, id, tid)) => exec.atomic_load(tid, id, load_acquires(order)),
            None => self.mirror.load(order),
        }
    }

    fn store(&self, value: u64, order: Ordering) {
        match self.route() {
            Some((exec, id, tid)) => {
                exec.atomic_store(tid, id, value, store_releases(order));
                self.mirror.store(value, Ordering::Relaxed);
            }
            None => self.mirror.store(value, order),
        }
    }

    /// A modeled read-modify-write; `op` returning `None` means "no
    /// store" (failed CAS).  The fallback path is supplied by the typed
    /// wrapper so it can use the native `std` RMW.
    fn rmw(
        &self,
        order: Ordering,
        op: impl Fn(u64) -> Option<u64>,
        fallback: impl FnOnce(&StdAtomicU64) -> u64,
    ) -> u64 {
        match self.route() {
            Some((exec, id, tid)) => {
                let prev =
                    exec.atomic_rmw(tid, id, load_acquires(order), store_releases(order), &op);
                if let Some(next) = op(prev) {
                    self.mirror.store(next, Ordering::Relaxed);
                }
                prev
            }
            None => fallback(&self.mirror),
        }
    }

    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        match self.route() {
            Some((exec, id, tid)) => {
                let acquires = load_acquires(success) || load_acquires(failure);
                let prev = exec.atomic_rmw(tid, id, acquires, store_releases(success), |v| {
                    (v == current).then_some(new)
                });
                if prev == current {
                    self.mirror.store(new, Ordering::Relaxed);
                    Ok(prev)
                } else {
                    Err(prev)
                }
            }
            None => self.mirror.compare_exchange(current, new, success, failure),
        }
    }
}

impl std::fmt::Debug for ModelAtomic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Reading the real model state would be a schedule point; show
        // the mirror, which tracks the latest store.
        write!(f, "{}", self.mirror.load(Ordering::Relaxed))
    }
}

macro_rules! int_atomic {
    ($name:ident, $ty:ty, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug)]
        pub struct $name(ModelAtomic);

        impl $name {
            /// Creates a new atomic, registering it with the active
            /// model execution if one exists on this thread.
            pub fn new(value: $ty) -> Self {
                Self(ModelAtomic::new(value as u64))
            }

            /// Loads the value.
            pub fn load(&self, order: Ordering) -> $ty {
                self.0.load(order) as $ty
            }

            /// Stores a value.
            pub fn store(&self, value: $ty, order: Ordering) {
                self.0.store(value as u64, order);
            }

            /// Adds to the value, returning the previous value.
            pub fn fetch_add(&self, value: $ty, order: Ordering) -> $ty {
                self.0.rmw(
                    order,
                    |v| Some((v as $ty).wrapping_add(value) as u64),
                    |m| m.fetch_add(value as u64, order),
                ) as $ty
            }

            /// Stores the maximum of the value and `value`, returning the
            /// previous value.
            pub fn fetch_max(&self, value: $ty, order: Ordering) -> $ty {
                self.0.rmw(
                    order,
                    |v| Some((v as $ty).max(value) as u64),
                    |m| m.fetch_max(value as u64, order),
                ) as $ty
            }

            /// Subtracts from the value, returning the previous value.
            ///
            /// (The u64 mirror wraps at 64 bits, but every read truncates
            /// with `as`, so results stay congruent at the typed width.)
            pub fn fetch_sub(&self, value: $ty, order: Ordering) -> $ty {
                self.0.rmw(
                    order,
                    |v| Some((v as $ty).wrapping_sub(value) as u64),
                    |m| m.fetch_sub(value as u64, order),
                ) as $ty
            }

            /// Stores `new` if the value equals `current`; returns the
            /// previous value as `Ok` on success, `Err` on failure.
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.0
                    .compare_exchange(current as u64, new as u64, success, failure)
                    .map(|v| v as $ty)
                    .map_err(|v| v as $ty)
            }

            /// `compare_exchange` that is additionally allowed to fail
            /// spuriously.  The model treats it as the strong variant
            /// (spurious failures add schedules but no new outcomes for
            /// retry loops, which is how the serving layer uses it).
            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(current, new, success, failure)
            }
        }
    };
}

int_atomic!(
    AtomicUsize,
    usize,
    "A model-checked `usize` atomic (see the module docs)."
);
int_atomic!(
    AtomicU64,
    u64,
    "A model-checked `u64` atomic (see the module docs)."
);

/// A model-checked `bool` atomic (see the module docs).
#[derive(Debug)]
pub struct AtomicBool(ModelAtomic);

impl AtomicBool {
    /// Creates a new atomic, registering it with the active model
    /// execution if one exists on this thread.
    pub fn new(value: bool) -> Self {
        Self(ModelAtomic::new(value as u64))
    }

    /// Loads the value.
    pub fn load(&self, order: Ordering) -> bool {
        self.0.load(order) != 0
    }

    /// Stores a value.
    pub fn store(&self, value: bool, order: Ordering) {
        self.0.store(value as u64, order);
    }

    /// Stores a value, returning the previous value.
    pub fn swap(&self, value: bool, order: Ordering) -> bool {
        self.0.rmw(
            order,
            |_| Some(value as u64),
            |m| m.swap(value as u64, order),
        ) != 0
    }
}
