//! Vector clocks and causality state for the model checker.
//!
//! Every model thread carries a [`Causality`]: a vector clock over thread
//! ids (used by the FastTrack-style data-race checks on `UnsafeCell`
//! accesses) plus a *view* — for each atomic, the earliest store in its
//! modification order the thread is still allowed to read.  Release
//! stores capture the storer's causality; acquire loads join it.  A load
//! may return any store at or after the thread's view index, which is
//! exactly how stale (weak-memory) reads enter the exploration.

/// Maximum threads per execution: the harness (tid 0) plus up to four
/// model threads.
pub(crate) const MAX_THREADS: usize = 5;

/// A fixed-width vector clock over [`MAX_THREADS`] thread ids.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(pub(crate) [u32; MAX_THREADS]);

impl VClock {
    /// Element-wise maximum.
    pub(crate) fn join(&mut self, other: &VClock) {
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Advances this thread's own component.
    pub(crate) fn bump(&mut self, tid: usize) {
        self.0[tid] += 1;
    }

    /// Whether the epoch `(tid, at)` happens-before a thread holding this
    /// clock (the FastTrack epoch test).
    pub(crate) fn dominates(&self, tid: usize, at: u32) -> bool {
        self.0[tid] >= at
    }
}

/// A thread's full causal knowledge: its vector clock plus its per-atomic
/// view (minimum readable store index, indexed by atomic id).
#[derive(Clone, Debug, Default)]
pub(crate) struct Causality {
    pub(crate) clock: VClock,
    view: Vec<usize>,
}

impl Causality {
    /// Joins another causality in (acquire edge).
    pub(crate) fn join(&mut self, other: &Causality) {
        self.clock.join(&other.clock);
        if self.view.len() < other.view.len() {
            self.view.resize(other.view.len(), 0);
        }
        for (mine, theirs) in self.view.iter_mut().zip(other.view.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// The earliest store index of atomic `id` this thread may read.
    pub(crate) fn view_of(&self, id: usize) -> usize {
        self.view.get(id).copied().unwrap_or(0)
    }

    /// Raises the view of atomic `id` to `idx` (coherence: once a store
    /// is observed, earlier stores become unreadable).
    pub(crate) fn advance_view(&mut self, id: usize, idx: usize) {
        if self.view.len() <= id {
            self.view.resize(id + 1, 0);
        }
        if self.view[id] < idx {
            self.view[id] = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_join_and_epoch_dominance() {
        let mut a = VClock::default();
        a.bump(1);
        a.bump(1);
        let mut b = VClock::default();
        b.bump(2);
        b.join(&a);
        assert!(b.dominates(1, 2));
        assert!(b.dominates(2, 1));
        assert!(!b.dominates(1, 3));
    }

    #[test]
    fn causality_view_joins_elementwise() {
        let mut a = Causality::default();
        a.advance_view(3, 7);
        let mut b = Causality::default();
        b.advance_view(3, 2);
        b.advance_view(0, 5);
        b.join(&a);
        assert_eq!(b.view_of(3), 7);
        assert_eq!(b.view_of(0), 5);
        assert_eq!(b.view_of(9), 0);
        // Joins never lower a view.
        a.join(&b);
        assert_eq!(a.view_of(0), 5);
        assert_eq!(a.view_of(3), 7);
    }
}
