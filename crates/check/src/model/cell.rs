//! The model-checked `UnsafeCell`: every access is race-checked against
//! the happens-before relation the execution has established.
//!
//! The data itself lives in a real `std::cell::UnsafeCell`; the model
//! adds a FastTrack-style detector in front of it.  When two accesses
//! (at least one a write) are unordered, the second accessor panics
//! *before* its closure runs, so the undefined behaviour the race would
//! constitute is reported rather than executed.

use std::sync::Arc;

use super::exec::{current_ctx, Execution};

/// A model-checked `UnsafeCell` (see the module docs).  API-compatible
/// with the zero-cost wrapper in [`crate::cell`].
pub struct UnsafeCell<T> {
    data: std::cell::UnsafeCell<T>,
    model: Option<(Arc<Execution>, usize)>,
}

impl<T> std::fmt::Debug for UnsafeCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Reading the contents would be an (unchecked) access; mirror
        // std's opaque formatting instead.
        f.pad("UnsafeCell { .. }")
    }
}

impl<T: Default> Default for UnsafeCell<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

// Like `std::cell::UnsafeCell`, this type is deliberately `!Sync`;
// containers built on it (e.g. the arrival queue) assert `Sync`
// themselves with the same justification they owe the std version.

impl<T> UnsafeCell<T> {
    /// Wraps `value`, registering the cell with the active model
    /// execution if one exists on this thread.
    pub fn new(value: T) -> Self {
        let model = current_ctx().map(|ctx| {
            let id = ctx.exec.register_cell();
            (ctx.exec, id)
        });
        Self {
            data: std::cell::UnsafeCell::new(value),
            model,
        }
    }

    fn check(&self, is_write: bool) {
        if let (Some((exec, id)), Some(ctx)) = (&self.model, current_ctx()) {
            if Arc::ptr_eq(&ctx.exec, exec) {
                exec.cell_access(ctx.tid, *id, is_write);
            }
        }
    }

    /// Calls `f` with a shared raw pointer to the contents, race-checked
    /// as a *read* access.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        self.check(false);
        f(self.data.get())
    }

    /// Calls `f` with an exclusive raw pointer to the contents,
    /// race-checked as a *write* access.
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        self.check(true);
        f(self.data.get())
    }

    /// Consumes the cell, returning the contents.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}
