//! One model-checked execution: the controlled scheduler, the per-atomic
//! store histories, and the cell race detector.
//!
//! # How an execution runs
//!
//! Model threads are real OS threads serialised by a **baton**: exactly
//! one thread (`current`) may perform shared-memory operations; everyone
//! else waits on a condvar.  Each operation is a *schedule point*: after
//! performing it, the running thread consults the exploration tape to
//! decide who performs the next operation — itself (no cost) or another
//! runnable thread (one *preemption*, bounded per execution).  Loads add
//! a second kind of choice: which store of the atomic's history to read
//! (any store at or after the thread's coherence view is a candidate, so
//! insufficiently-synchronised code observes stale values exactly as a
//! weak memory model allows).
//!
//! The DFS driver in [`super::Model`] replays a recorded prefix of
//! choices and extends it depth-first, so the exploration is exhaustive
//! over the bounded choice tree and fully deterministic.
//!
//! # Failure handling
//!
//! A detected data race, a panicking assertion in a model thread, or an
//! exceeded step budget flips the execution into **abort mode**: choices
//! stop being recorded and the remaining threads run to completion one
//! at a time (still baton-serialised, so no undefined behaviour can
//! occur while unwinding the rest of the execution).

use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use super::clock::{Causality, MAX_THREADS};

/// Sentinel for "no thread holds the baton".
const NOBODY: usize = usize::MAX;

/// One recorded nondeterministic choice: which alternative was taken out
/// of how many.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Choice {
    /// Index of the alternative taken.
    pub chosen: usize,
    /// Number of alternatives that existed at this point.
    pub alts: usize,
}

/// Why a model check failed, with the schedule that exposed it.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Human-readable description (race report or panic message).
    pub message: String,
    /// 1-based index of the failing execution.
    pub interleaving: u64,
    /// The choice tape of the failing execution (replayable: the same
    /// model explored with this prefix reproduces the failure first).
    pub schedule: Vec<Choice>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "interleaving #{}: {} (schedule: {:?})",
            self.interleaving,
            self.message,
            self.schedule.iter().map(|c| c.chosen).collect::<Vec<_>>()
        )
    }
}

/// Execution phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Harness building shared state; no scheduling, no choices.
    Setup,
    /// Model threads running under the controlled scheduler.
    Run,
    /// A failure or budget overrun occurred: threads are drained to
    /// completion serially with no further recording.
    Abort,
    /// Threads joined; the harness runs the finale assertions.
    Finale,
}

/// One store in an atomic's modification order.
#[derive(Clone, Debug)]
struct StoreEvt {
    value: u64,
    /// The causality an acquire load of this store synchronises with:
    /// `Some` for release stores (and for RMWs continuing a release
    /// sequence), `None` for relaxed stores.
    sync: Option<Causality>,
}

/// Per-atomic model state: the full store history.
#[derive(Debug, Default)]
struct AtomicState {
    stores: Vec<StoreEvt>,
}

/// Per-cell race-detector state (FastTrack-style epochs).
#[derive(Debug, Default)]
struct CellState {
    /// Last write as `(tid, clock-at-write)`.
    write: Option<(usize, u32)>,
    /// Last read epoch per thread since the last write.
    reads: [Option<u32>; MAX_THREADS],
}

/// The mutable state behind the execution mutex.
pub(crate) struct ExecState {
    pub(crate) phase: Phase,
    current: usize,
    /// Number of model threads (tids `1..=threads`).
    threads: usize,
    finished: usize,
    alive: [bool; MAX_THREADS],
    caus: [Causality; MAX_THREADS],
    atomics: Vec<AtomicState>,
    cells: Vec<CellState>,
    preemption_bound: usize,
    preemptions: usize,
    steps: u64,
    max_steps: u64,
    pub(crate) pruned: bool,
    tape: Vec<Choice>,
    cursor: usize,
    pub(crate) failure: Option<String>,
}

impl ExecState {
    /// Takes the next choice at a branching point with `alts`
    /// alternatives: replays the tape prefix, then extends depth-first
    /// with alternative 0.  Only called in [`Phase::Run`].
    fn decide(&mut self, alts: usize) -> usize {
        debug_assert_eq!(self.phase, Phase::Run);
        if alts <= 1 {
            return 0;
        }
        if self.cursor < self.tape.len() {
            let c = self.tape[self.cursor];
            debug_assert_eq!(
                c.alts, alts,
                "nondeterministic model: replay saw a different branch width"
            );
            self.cursor += 1;
            c.chosen
        } else {
            self.tape.push(Choice { chosen: 0, alts });
            self.cursor += 1;
            0
        }
    }

    fn runnable(&self) -> Vec<usize> {
        (1..=self.threads).filter(|&t| self.alive[t]).collect()
    }

    fn fail(&mut self, message: String) {
        if self.failure.is_none() {
            self.failure = Some(message);
        }
        self.phase = Phase::Abort;
    }
}

/// One model-checked execution (shared between the harness and its model
/// threads).
pub(crate) struct Execution {
    state: Mutex<ExecState>,
    cv: Condvar,
}

impl Execution {
    pub(crate) fn new(tape: Vec<Choice>, preemption_bound: usize, max_steps: u64) -> Self {
        Self {
            state: Mutex::new(ExecState {
                phase: Phase::Setup,
                current: NOBODY,
                threads: 0,
                finished: 0,
                alive: [false; MAX_THREADS],
                caus: Default::default(),
                atomics: Vec::new(),
                cells: Vec::new(),
                preemption_bound,
                preemptions: 0,
                steps: 0,
                max_steps,
                pruned: false,
                tape,
                cursor: 0,
                failure: None,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, ExecState> {
        // A panicking model thread (race detection, model assertions)
        // poisons the mutex by design; the state stays valid, so strip
        // the poison instead of propagating it.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers a new atomic with its initial value, returning its id.
    pub(crate) fn register_atomic(&self, init: u64) -> usize {
        let mut g = self.lock();
        g.atomics.push(AtomicState {
            stores: vec![StoreEvt {
                value: init,
                sync: None,
            }],
        });
        g.atomics.len() - 1
    }

    /// Registers a new cell, returning its id.
    pub(crate) fn register_cell(&self) -> usize {
        let mut g = self.lock();
        g.cells.push(CellState::default());
        g.cells.len() - 1
    }

    /// Transitions from setup to the run phase with `threads` model
    /// threads, and makes the first baton assignment (a recorded choice).
    pub(crate) fn start_run(&self, threads: usize) {
        assert!(
            (1..MAX_THREADS).contains(&threads),
            "a model needs 1..={} threads, got {threads}",
            MAX_THREADS - 1
        );
        let mut g = self.lock();
        g.threads = threads;
        g.phase = Phase::Run;
        for tid in 1..=threads {
            g.alive[tid] = true;
            g.caus[tid] = g.caus[0].clone();
        }
        let first = g.decide(threads);
        g.current = first + 1;
        self.cv.notify_all();
    }

    /// Blocks until every model thread has finished.
    pub(crate) fn wait_threads(&self) {
        let mut g = self.lock();
        while g.finished < g.threads {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Transitions into the finale phase: the harness joins every model
    /// thread's causality (the join edge), so finale reads are ordered
    /// after everything the threads did.
    pub(crate) fn start_finale(&self) {
        let mut g = self.lock();
        for tid in 1..=g.threads {
            let thread_caus = g.caus[tid].clone();
            g.caus[0].join(&thread_caus);
        }
        if g.phase != Phase::Abort {
            g.phase = Phase::Finale;
        } else {
            // Keep abort semantics for the drop path, but the harness is
            // the only thread left — give it the baton.
            g.current = 0;
        }
    }

    /// Records a model-thread exit (and any panic it carried: assertion
    /// failure or race report unwinding), then passes the baton on.
    ///
    /// Exiting is itself a *scheduled event*: the thread first waits for
    /// the baton, because it shrinks the runnable set — letting that
    /// happen at an arbitrary real-time moment would make the branch
    /// widths of later choices nondeterministic and break DFS replay.
    pub(crate) fn thread_finished(&self, tid: usize, panic_message: Option<String>) {
        let g = self.lock();
        let mut g = self.acquire_baton(g, tid);
        g.alive[tid] = false;
        g.finished += 1;
        if let Some(msg) = panic_message {
            g.fail(msg);
        }
        let runnable = g.runnable();
        if runnable.is_empty() {
            g.current = NOBODY;
        } else if g.phase == Phase::Run {
            // Which thread proceeds after an exit is itself a scheduling
            // choice (a forced switch — no preemption charged).
            let c = g.decide(runnable.len());
            g.current = runnable[c];
        } else {
            g.current = runnable[0];
        }
        self.cv.notify_all();
    }

    /// Waits until `tid` holds the baton (run/abort phases).  Setup and
    /// finale run unscheduled on the harness thread.
    fn acquire_baton<'a>(
        &self,
        mut g: MutexGuard<'a, ExecState>,
        tid: usize,
    ) -> MutexGuard<'a, ExecState> {
        if tid == 0 {
            return g;
        }
        while g.current != tid {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        g
    }

    /// Accounts one operation against the step budget; an overrun prunes
    /// the execution (recorded in the report) and flips to abort mode so
    /// it still terminates.
    fn charge_step(&self, g: &mut MutexGuard<'_, ExecState>) {
        g.steps += 1;
        if g.phase == Phase::Run && g.steps > g.max_steps {
            g.pruned = true;
            g.phase = Phase::Abort;
            self.cv.notify_all();
        }
    }

    /// The post-operation schedule point: decide who performs the next
    /// operation.  Staying with the current thread is alternative 0;
    /// switching to another runnable thread is a preemption, enumerated
    /// only while the preemption budget lasts.
    ///
    /// In abort mode the baton instead rotates round-robin with no
    /// recording, so bounded spin loops in draining threads cannot wedge
    /// the wind-down.
    fn hand_off(&self, g: &mut MutexGuard<'_, ExecState>, tid: usize) {
        if tid == 0 {
            return;
        }
        match g.phase {
            Phase::Run => {
                let mut alts = vec![tid];
                if g.preemptions < g.preemption_bound {
                    alts.extend(g.runnable().into_iter().filter(|&t| t != tid));
                }
                let c = g.decide(alts.len());
                let next = alts[c];
                if next != tid {
                    g.preemptions += 1;
                    g.current = next;
                    self.cv.notify_all();
                }
            }
            Phase::Abort => {
                let runnable = g.runnable();
                let next = runnable
                    .iter()
                    .copied()
                    .find(|&t| t > tid)
                    .or_else(|| runnable.first().copied());
                if let Some(next) = next {
                    if next != tid {
                        g.current = next;
                        self.cv.notify_all();
                    }
                }
            }
            _ => {}
        }
    }

    /// A pure schedule point with no memory effect (`yield_now`).
    pub(crate) fn yield_point(&self, tid: usize) {
        let g = self.lock();
        let mut g = self.acquire_baton(g, tid);
        if g.phase == Phase::Run {
            self.charge_step(&mut g);
        }
        self.hand_off(&mut g, tid);
    }

    /// An atomic load: picks (depth-first) one of the stores the thread's
    /// coherence view still allows, newest first, and joins the store's
    /// causality when the load has acquire semantics.
    pub(crate) fn atomic_load(&self, tid: usize, id: usize, acquire: bool) -> u64 {
        let g = self.lock();
        let mut g = self.acquire_baton(g, tid);
        if g.phase == Phase::Run {
            self.charge_step(&mut g);
        }
        let newest = g.atomics[id].stores.len() - 1;
        let idx = if g.phase == Phase::Run {
            let oldest = g.caus[tid].view_of(id);
            newest - g.decide(newest - oldest + 1)
        } else {
            newest
        };
        let evt = &g.atomics[id].stores[idx];
        let value = evt.value;
        let sync = if acquire { evt.sync.clone() } else { None };
        g.caus[tid].clock.bump(tid);
        g.caus[tid].advance_view(id, idx);
        if let Some(s) = sync {
            g.caus[tid].join(&s);
        }
        self.hand_off(&mut g, tid);
        value
    }

    /// An atomic store, appended to the modification order.  A release
    /// store captures the storer's causality; a relaxed store publishes
    /// nothing (and, per the C++17 release-sequence rules, also ends any
    /// release sequence headed at this atomic).
    pub(crate) fn atomic_store(&self, tid: usize, id: usize, value: u64, release: bool) {
        let g = self.lock();
        let mut g = self.acquire_baton(g, tid);
        if g.phase == Phase::Run {
            self.charge_step(&mut g);
        }
        g.caus[tid].clock.bump(tid);
        let sync = release.then(|| g.caus[tid].clone());
        g.atomics[id].stores.push(StoreEvt { value, sync });
        let idx = g.atomics[id].stores.len() - 1;
        g.caus[tid].advance_view(id, idx);
        self.hand_off(&mut g, tid);
    }

    /// An atomic read-modify-write.  RMWs read the *latest* store in the
    /// modification order (atomicity), continue its release sequence
    /// (an acquire load of the new store still synchronises with the
    /// sequence head), and join the head's causality when the RMW has
    /// acquire semantics.  Returns the previous value; `op` returning
    /// `None` models a failed compare-exchange (pure load of the latest
    /// value — a modest strengthening of C11, which lets failed CAS read
    /// stale values; documented in the module docs).
    pub(crate) fn atomic_rmw(
        &self,
        tid: usize,
        id: usize,
        acquire: bool,
        release: bool,
        op: impl FnOnce(u64) -> Option<u64>,
    ) -> u64 {
        let g = self.lock();
        let mut g = self.acquire_baton(g, tid);
        if g.phase == Phase::Run {
            self.charge_step(&mut g);
        }
        let newest = g.atomics[id].stores.len() - 1;
        let last = g.atomics[id].stores[newest].clone();
        g.caus[tid].clock.bump(tid);
        g.caus[tid].advance_view(id, newest);
        if acquire {
            if let Some(s) = &last.sync {
                let s = s.clone();
                g.caus[tid].join(&s);
            }
        }
        if let Some(next) = op(last.value) {
            let mut sync = last.sync;
            if release {
                match &mut sync {
                    Some(s) => {
                        let mine = g.caus[tid].clone();
                        s.join(&mine);
                    }
                    None => sync = Some(g.caus[tid].clone()),
                }
            }
            g.atomics[id].stores.push(StoreEvt { value: next, sync });
            let idx = g.atomics[id].stores.len() - 1;
            g.caus[tid].advance_view(id, idx);
        }
        self.hand_off(&mut g, tid);
        last.value
    }

    /// A cell access (read or write): the FastTrack race check.  On a
    /// detected race the failure is recorded and the accessing thread
    /// panics *before* touching memory, so the undefined behaviour the
    /// race would constitute never actually executes.
    pub(crate) fn cell_access(&self, tid: usize, id: usize, is_write: bool) {
        let g = self.lock();
        let mut g = self.acquire_baton(g, tid);
        if g.phase == Phase::Abort {
            // Abort mode is baton-serialised with no further checks.
            return;
        }
        if g.phase == Phase::Run {
            self.charge_step(&mut g);
            if g.phase == Phase::Abort {
                return;
            }
        }
        g.caus[tid].clock.bump(tid);
        let clock = g.caus[tid].clock;
        let cell = &g.cells[id];
        let mut race = None;
        if let Some((wt, wc)) = cell.write {
            if wt != tid && !clock.dominates(wt, wc) {
                race = Some(format!(
                    "data race on cell #{id}: {} by thread {tid} is unordered \
                     with a write by thread {wt}",
                    if is_write { "a write" } else { "a read" },
                ));
            }
        }
        if is_write && race.is_none() {
            for (rt, read) in cell.reads.iter().enumerate() {
                if let Some(rc) = read {
                    if rt != tid && !clock.dominates(rt, *rc) {
                        race = Some(format!(
                            "data race on cell #{id}: a write by thread {tid} is \
                             unordered with a read by thread {rt}",
                        ));
                        break;
                    }
                }
            }
        }
        if let Some(message) = race {
            g.fail(message.clone());
            self.cv.notify_all();
            drop(g);
            // Unwind out of the access before the closure can touch the
            // cell; the wrapper around the thread body catches this.
            panic!("{message}");
        }
        let cell = &mut g.cells[id];
        if is_write {
            cell.write = Some((tid, clock.0[tid]));
            cell.reads = [None; MAX_THREADS];
        } else {
            cell.reads[tid] = Some(clock.0[tid]);
        }
        self.hand_off(&mut g, tid);
    }

    /// Extracts the outcome after the finale: the tape (for DFS
    /// backtracking), whether the execution was pruned, and any failure.
    pub(crate) fn outcome(&self) -> (Vec<Choice>, bool, Option<String>) {
        let mut g = self.lock();
        let tape = std::mem::take(&mut g.tape);
        (tape, g.pruned, g.failure.clone())
    }

    /// Records a failure from the harness side (setup or finale panic).
    pub(crate) fn harness_failure(&self, message: String) {
        self.lock().fail(message);
    }
}

/// The per-thread context: which execution this OS thread belongs to and
/// as which model tid.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<Execution>,
    pub(crate) tid: usize,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

/// The current thread's model context, if it belongs to an execution.
pub(crate) fn current_ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

/// Installs (or clears) the current thread's model context.
pub(crate) fn set_ctx(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}
