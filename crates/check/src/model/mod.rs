//! A bounded-exhaustive model checker for the serving layer's lock-free
//! code, in the style of loom/CHESS: real OS threads, serialised by a
//! baton, explored depth-first over every scheduling decision (with a
//! preemption bound) and every value a weakly-ordered load may return.
//!
//! This module always compiles — its own unit and integration tests run
//! in the normal test suite — but consumer crates only route their
//! atomics through it when built with `RUSTFLAGS="--cfg pss_model_check"`
//! (see [`crate::sync`]).
//!
//! # Writing a model
//!
//! ```
//! use pss_check::model::{Model, ModelRun};
//! use pss_check::sync::atomic::Ordering;
//! use std::sync::Arc;
//!
//! // Use the *model* types directly so the example checks even when the
//! // enclosing build is not `--cfg pss_model_check`.
//! use pss_check::model::atomic::AtomicUsize;
//!
//! let report = Model::new().check(|| {
//!     let flag = Arc::new(AtomicUsize::new(0));
//!     let (a, b) = (flag.clone(), flag.clone());
//!     ModelRun {
//!         threads: vec![
//!             Box::new(move || a.store(1, Ordering::Release)),
//!             Box::new(move || {
//!                 let _ = b.load(Ordering::Acquire);
//!             }),
//!         ],
//!         finale: Box::new(move || assert_eq!(flag.load(Ordering::Relaxed), 1)),
//!     }
//! });
//! assert!(report.interleavings >= 2);
//! ```
//!
//! The setup closure runs once per explored interleaving, so it must be
//! deterministic: same structure, same operations, every time.

pub mod atomic;
pub mod cell;
mod clock;
mod exec;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Once};

use exec::Execution;
pub(crate) use exec::{current_ctx, set_ctx, Ctx};
pub use exec::{Choice, Failure};

/// One execution's worth of model threads plus the post-join assertions.
///
/// Returned by the setup closure handed to [`Model::explore`]; the
/// closure is re-invoked for every explored interleaving and must build
/// the same structure each time.
pub struct ModelRun {
    /// The model thread bodies (at most four).  Each runs on a real OS
    /// thread under the controlled scheduler.
    pub threads: Vec<Box<dyn FnOnce() + Send>>,
    /// Runs on the harness thread after every model thread has finished
    /// (and after the causal join with all of them): the place for
    /// whole-run assertions such as multiset conservation.
    pub finale: Box<dyn FnOnce()>,
}

/// The result of an exploration.
#[derive(Debug)]
pub struct Report {
    /// Completed executions (each a distinct interleaving / weak-memory
    /// read resolution).
    pub interleavings: u64,
    /// Executions abandoned for exceeding the step budget.
    pub pruned: u64,
    /// Whether exploration stopped at the execution cap rather than
    /// exhausting the bounded space.
    pub capped: bool,
    /// The first failure found, if any.  `None` means every explored
    /// execution passed.
    pub failure: Option<Failure>,
}

/// The model-checker configuration and entry point.
#[derive(Clone, Debug)]
pub struct Model {
    preemption_bound: usize,
    max_executions: u64,
    max_steps: u64,
}

impl Default for Model {
    fn default() -> Self {
        Self::new()
    }
}

impl Model {
    /// A model with the default bounds: 2 preemptions, 10 000 steps per
    /// execution, 200 000 executions.
    pub fn new() -> Self {
        Self {
            preemption_bound: 2,
            max_executions: 200_000,
            max_steps: 10_000,
        }
    }

    /// Caps forced context switches per execution.  Empirically almost
    /// all concurrency bugs surface within two preemptions (the CHESS
    /// observation); raising this widens coverage exponentially.
    pub fn preemption_bound(mut self, bound: usize) -> Self {
        self.preemption_bound = bound;
        self
    }

    /// Caps the number of executions explored (sets [`Report::capped`]
    /// when hit).
    pub fn max_executions(mut self, cap: u64) -> Self {
        self.max_executions = cap;
        self
    }

    /// Caps scheduled operations per execution; executions over budget
    /// are abandoned and counted in [`Report::pruned`].
    pub fn max_steps(mut self, cap: u64) -> Self {
        self.max_steps = cap;
        self
    }

    /// Explores every interleaving of the model built by `setup` within
    /// the configured bounds, stopping at the first failure.
    pub fn explore(&self, mut setup: impl FnMut() -> ModelRun) -> Report {
        install_quiet_hook();
        let mut report = Report {
            interleavings: 0,
            pruned: 0,
            capped: false,
            failure: None,
        };
        let mut tape: Vec<Choice> = Vec::new();
        loop {
            if report.interleavings + report.pruned >= self.max_executions {
                report.capped = true;
                return report;
            }
            let exec = Arc::new(Execution::new(
                std::mem::take(&mut tape),
                self.preemption_bound,
                self.max_steps,
            ));
            let (final_tape, pruned, failure) = self.run_once(&exec, &mut setup);
            if pruned {
                report.pruned += 1;
            } else {
                report.interleavings += 1;
            }
            if let Some(message) = failure {
                report.failure = Some(Failure {
                    message,
                    interleaving: report.interleavings + report.pruned,
                    schedule: final_tape,
                });
                return report;
            }
            match advance(final_tape) {
                Some(next) => tape = next,
                None => return report,
            }
        }
    }

    /// [`Model::explore`], panicking with the failure (including its
    /// replayable schedule) if one is found.
    ///
    /// # Panics
    ///
    /// Panics when any explored execution fails.
    pub fn check(&self, setup: impl FnMut() -> ModelRun) -> Report {
        let report = self.explore(setup);
        if let Some(failure) = &report.failure {
            panic!("model check failed at {failure}");
        }
        report
    }

    /// Runs a single execution against a prepared tape.
    fn run_once(
        &self,
        exec: &Arc<Execution>,
        setup: &mut impl FnMut() -> ModelRun,
    ) -> (Vec<Choice>, bool, Option<String>) {
        set_ctx(Some(Ctx {
            exec: exec.clone(),
            tid: 0,
        }));
        let run = match catch_unwind(AssertUnwindSafe(&mut *setup)) {
            Ok(run) => run,
            Err(cause) => {
                set_ctx(None);
                std::panic::resume_unwind(cause);
            }
        };
        let threads = run.threads;
        assert!(
            !threads.is_empty(),
            "a model needs at least one thread to schedule"
        );
        let handles: Vec<_> = threads
            .into_iter()
            .enumerate()
            .map(|(i, body)| {
                let exec = exec.clone();
                std::thread::spawn(move || {
                    let tid = i + 1;
                    set_ctx(Some(Ctx {
                        exec: exec.clone(),
                        tid,
                    }));
                    let outcome = catch_unwind(AssertUnwindSafe(body));
                    // `as_ref` to reach the payload itself — coercing
                    // `&Box<dyn Any>` would downcast against the Box.
                    exec.thread_finished(tid, outcome.err().map(|e| panic_message(e.as_ref())));
                })
            })
            .collect();
        exec.start_run(handles.len());
        exec.wait_threads();
        for handle in handles {
            // The model threads have all signalled completion; join the
            // OS threads too so nothing leaks across executions.
            let _ = handle.join();
        }
        exec.start_finale();
        if let Err(cause) = catch_unwind(AssertUnwindSafe(run.finale)) {
            exec.harness_failure(format!("finale failed: {}", panic_message(cause.as_ref())));
        }
        set_ctx(None);
        exec.outcome()
    }
}

/// Depth-first backtracking over a finished execution's tape: bump the
/// last choice that still has an untried alternative and drop everything
/// after it; `None` when the whole bounded space has been explored.
fn advance(mut tape: Vec<Choice>) -> Option<Vec<Choice>> {
    while let Some(last) = tape.last_mut() {
        if last.chosen + 1 < last.alts {
            last.chosen += 1;
            return Some(tape);
        }
        tape.pop();
    }
    None
}

/// A yield with no memory effect: a pure schedule point when called from
/// a model thread, a plain `std` yield otherwise.
pub fn yield_now() {
    match current_ctx() {
        Some(ctx) => ctx.exec.yield_point(ctx.tid),
        None => std::thread::yield_now(),
    }
}

fn panic_message(cause: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = cause.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = cause.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked (non-string payload)".to_string()
    }
}

/// Model threads panic on purpose (race reports, failing assertions,
/// expected-failure self-tests); silence the default per-panic stderr
/// dump for threads that belong to an execution, keeping it for
/// everything else.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if std::env::var_os("PSS_CHECK_DEBUG_PANICS").is_some() {
                eprintln!("[pss-check model panic] {info}");
            }
            if current_ctx().is_none() {
                default(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::atomic::{AtomicBool, AtomicUsize};
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn advance_walks_the_choice_tree_depth_first() {
        let tape = vec![Choice { chosen: 0, alts: 2 }, Choice { chosen: 1, alts: 2 }];
        let next = advance(tape).expect("first choice still has an alternative");
        assert_eq!(next, vec![Choice { chosen: 1, alts: 2 }]);
        assert_eq!(advance(next), None);
        assert_eq!(advance(Vec::new()), None);
    }

    #[test]
    fn counts_interleavings_of_two_independent_writers() {
        // Two threads, one store each to distinct atomics: at least the
        // two operation orders (and nothing fails).
        let report = Model::new().check(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let b = Arc::new(AtomicUsize::new(0));
            let (wa, wb) = (a.clone(), b.clone());
            ModelRun {
                threads: vec![
                    Box::new(move || wa.store(1, Ordering::Relaxed)),
                    Box::new(move || wb.store(1, Ordering::Relaxed)),
                ],
                finale: Box::new(move || {
                    assert_eq!(a.load(Ordering::Relaxed), 1);
                    assert_eq!(b.load(Ordering::Relaxed), 1);
                }),
            }
        });
        assert!(report.interleavings >= 2, "report: {report:?}");
        assert!(!report.capped);
        assert_eq!(report.pruned, 0);
    }

    #[test]
    fn relaxed_load_may_read_stale_value() {
        // Writer stores 1; reader may still read the initial 0 even when
        // scheduled after the store — the weak-memory half of the model.
        // Neither "always reads 0" nor "always reads 1" can survive the
        // full exploration, which proves both values are reachable.
        for expect_zero in [false, true] {
            let report = Model::new().explore(|| {
                let flag = Arc::new(AtomicUsize::new(0));
                let (w, r) = (flag.clone(), flag.clone());
                ModelRun {
                    threads: vec![
                        Box::new(move || w.store(1, Ordering::Relaxed)),
                        Box::new(move || {
                            let seen = r.load(Ordering::Relaxed);
                            assert_eq!(seen, usize::from(!expect_zero));
                        }),
                    ],
                    finale: Box::new(|| ()),
                }
            });
            assert!(report.failure.is_some(), "expect_zero={expect_zero}");
        }
    }

    #[test]
    fn release_store_publishes_to_acquire_load() {
        // Acquire/Release handshake through an AtomicBool: once the
        // reader sees the flag, the Relaxed payload must be visible too
        // (the acquire join raises the reader's view of the payload).
        let report = Model::new().check(|| {
            let payload = Arc::new(AtomicUsize::new(0));
            let ready = Arc::new(AtomicBool::new(false));
            let (wp, wr) = (payload.clone(), ready.clone());
            let (rp, rr) = (payload, ready);
            ModelRun {
                threads: vec![
                    Box::new(move || {
                        wp.store(7, Ordering::Relaxed);
                        wr.store(true, Ordering::Release);
                    }),
                    Box::new(move || {
                        if rr.load(Ordering::Acquire) {
                            assert_eq!(rp.load(Ordering::Relaxed), 7);
                        }
                    }),
                ],
                finale: Box::new(|| ()),
            }
        });
        assert!(report.interleavings > 2);
    }

    #[test]
    fn relaxed_publication_flag_is_rejected() {
        // The same handshake with a Relaxed flag store must fail: the
        // reader can see the flag yet still read the stale payload.
        let report = Model::new().explore(|| {
            let payload = Arc::new(AtomicUsize::new(0));
            let ready = Arc::new(AtomicBool::new(false));
            let (wp, wr) = (payload.clone(), ready.clone());
            let (rp, rr) = (payload, ready);
            ModelRun {
                threads: vec![
                    Box::new(move || {
                        wp.store(7, Ordering::Relaxed);
                        wr.store(true, Ordering::Relaxed);
                    }),
                    Box::new(move || {
                        if rr.load(Ordering::Acquire) {
                            assert_eq!(rp.load(Ordering::Relaxed), 7);
                        }
                    }),
                ],
                finale: Box::new(|| ()),
            }
        });
        assert!(report.failure.is_some());
    }

    #[test]
    fn rmw_reads_latest_and_never_loses_increments() {
        // Three threads fetch_add(1, Relaxed); atomicity means the final
        // value is always 3 even though every individual load is weak.
        let report = Model::new().check(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let mk = |n: Arc<AtomicUsize>| -> Box<dyn FnOnce() + Send> {
                Box::new(move || {
                    n.fetch_add(1, Ordering::Relaxed);
                })
            };
            ModelRun {
                threads: vec![mk(n.clone()), mk(n.clone()), mk(n.clone())],
                finale: Box::new(move || assert_eq!(n.load(Ordering::Relaxed), 3)),
            }
        });
        assert!(report.interleavings >= 6);
    }

    #[test]
    fn step_budget_prunes_instead_of_hanging() {
        let report = Model::new().max_steps(8).max_executions(64).explore(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let spin = n.clone();
            ModelRun {
                threads: vec![Box::new(move || {
                    for _ in 0..100 {
                        spin.fetch_add(1, Ordering::Relaxed);
                    }
                })],
                finale: Box::new(|| ()),
            }
        });
        assert!(report.pruned > 0);
        assert!(report.failure.is_none());
    }
}
