//! The `UnsafeCell` facade: closure-based access so the model checker can
//! observe (and race-check) every read and write of checker-managed data.
//!
//! In normal builds [`UnsafeCell`] is a `#[repr(transparent)]` wrapper
//! over `std::cell::UnsafeCell` whose accessors inline to a bare pointer
//! — zero cost.  Under `--cfg pss_model_check` it is the model cell,
//! which records each access with the running thread's vector clock and
//! reports a data race whenever two accesses (at least one a write) are
//! not ordered by happens-before.

#[cfg(pss_model_check)]
pub use crate::model::cell::UnsafeCell;

/// A zero-cost `std::cell::UnsafeCell` wrapper with the closure-based
/// access API the model checker needs.
///
/// Safety is entirely the caller's: `with`/`with_mut` hand out raw
/// pointers exactly like `std::cell::UnsafeCell::get`, and the caller's
/// closure must uphold Rust's aliasing rules when dereferencing them.
/// (The model-checked build *verifies* that discipline by exploring
/// interleavings.)
#[cfg(not(pss_model_check))]
#[derive(Debug, Default)]
#[repr(transparent)]
pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

#[cfg(not(pss_model_check))]
impl<T> UnsafeCell<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Self {
        Self(std::cell::UnsafeCell::new(value))
    }

    /// Calls `f` with a shared raw pointer to the contents (a *read*
    /// access under the model checker).
    #[inline(always)]
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        f(self.0.get())
    }

    /// Calls `f` with an exclusive raw pointer to the contents (a *write*
    /// access under the model checker).
    #[inline(always)]
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        f(self.0.get())
    }

    /// Consumes the cell, returning the contents.
    pub fn into_inner(self) -> T {
        self.0.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_mode_cell_round_trips() {
        // The crate forbids `unsafe`, so exercise the accessors without
        // dereferencing: both must hand out the same non-null location.
        let cell = UnsafeCell::new(7_u32);
        let shared = cell.with(|p| p as usize);
        let excl = cell.with_mut(|p| p as usize);
        assert_eq!(shared, excl);
        assert_ne!(shared, 0);
        assert_eq!(cell.into_inner(), 7);
    }
}
