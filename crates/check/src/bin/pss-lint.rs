//! The `pss-lint` binary: walks the workspace, runs every invariant
//! rule, prints findings compiler-style, and exits non-zero if any
//! fired.  Run from anywhere inside the workspace:
//!
//! ```text
//! cargo run -q -p pss-check --bin pss-lint
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).ok()?;
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let Some(root) = workspace_root() else {
        eprintln!("pss-lint: no workspace root found above the current directory");
        return ExitCode::FAILURE;
    };
    match pss_check::lint::check_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("pss-lint: workspace clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                eprintln!("{f}");
            }
            eprintln!("pss-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("pss-lint: i/o error: {err}");
            ExitCode::FAILURE
        }
    }
}
