//! The atomics facade: what the serving layer imports instead of
//! `std::sync::atomic`.
//!
//! In normal builds [`atomic`] re-exports the `std` types verbatim — zero
//! cost, identical codegen.  Under `--cfg pss_model_check` it resolves to
//! the model-checked atomics of [`crate::model::atomic`], which route every
//! operation through the controlled scheduler and keep per-atomic store
//! histories so weak-memory behaviours are explored.
//!
//! The module also provides the small derived types the workspace's
//! *reporting-only* shared state uses ([`Counter`], [`Gauge`],
//! [`AtomicF64`]).  They are built on the facade atomics (so they are
//! model-checked too) and use `Relaxed` internally: they carry statistics,
//! not synchronisation — no other memory is published through them, which
//! is exactly the ordering contract `Relaxed` expresses.  Keeping them
//! here also keeps `Ordering::` tokens out of their callers, which
//! `pss-lint` enforces (rule `ordering-outside-facade`).

/// Atomic integer and flag types plus [`atomic::Ordering`].
///
/// `std::sync::atomic` re-exports in normal builds; the model-checked
/// types under `--cfg pss_model_check` (orderings are always the `std`
/// enum — the model interprets them rather than redefining them).
#[cfg(not(pss_model_check))]
pub mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

/// Atomic integer and flag types plus [`atomic::Ordering`].
///
/// Model-checked build: every load/store/RMW is a schedule point and
/// consults the per-atomic store history.
#[cfg(pss_model_check)]
pub mod atomic {
    pub use crate::model::atomic::{AtomicBool, AtomicU64, AtomicUsize};
    pub use std::sync::atomic::Ordering;
}

use atomic::{AtomicU64, AtomicUsize, Ordering};

/// A monotone event counter for reporting-only statistics.
///
/// All operations are `Relaxed`: the counter synchronises nothing — it is
/// read for summaries after the threads that bump it have been joined (the
/// join edge orders the final read), or as an approximate live sample.
#[derive(Debug)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current count (approximate under concurrent bumps).
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// An up/down gauge for tracking a live quantity (e.g. a tenant's
/// outstanding queued jobs).
///
/// Like [`Counter`], all operations are `Relaxed`: the gauge's RMWs are
/// atomic regardless of ordering (orderings only constrain *other*
/// memory), so compare-style uses such as quota gates stay exact counts —
/// they just don't publish anything else.
#[derive(Debug)]
pub struct Gauge(AtomicUsize);

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        Self(AtomicUsize::new(0))
    }

    /// Increments the gauge, returning the *previous* value (so callers
    /// can enforce caps race-free: the increment reserves the slot).
    pub fn incr(&self) -> usize {
        self.0.fetch_add(1, Ordering::Relaxed)
    }

    /// Decrements the gauge.
    pub fn decr(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// The current value (approximate under concurrent updates).
    pub fn get(&self) -> usize {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

/// A lock-free `f64` accumulator (there is no atomic `f64` on stable):
/// the value lives as IEEE-754 bits in an `AtomicU64` and additions go
/// through a CAS loop.
///
/// Reporting-only, hence `Relaxed` throughout: the CAS loop makes each
/// addition atomic (no lost updates) and the final read happens after the
/// contributing threads are joined.
#[derive(Debug)]
pub struct AtomicF64(AtomicU64);

impl AtomicF64 {
    /// An accumulator holding `value`.
    pub fn new(value: f64) -> Self {
        Self(AtomicU64::new(value.to_bits()))
    }

    /// Adds `v` (CAS loop over the bit pattern).
    pub fn add(&self, v: f64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

impl Default for AtomicF64 {
    fn default() -> Self {
        Self::new(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_count() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        assert_eq!(g.incr(), 0);
        assert_eq!(g.incr(), 1);
        g.decr();
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn atomic_f64_accumulates_under_contention() {
        let acc = std::sync::Arc::new(AtomicF64::new(0.0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let acc = std::sync::Arc::clone(&acc);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    acc.add(0.25);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(acc.get(), 1000.0);
    }
}
