//! Spin-loop hint facade.

/// Emits a spin-loop hint.
///
/// `std::hint::spin_loop` in normal builds; a scheduler yield point under
/// `--cfg pss_model_check` (a spinning thread must let the scheduler run
/// the thread it is waiting on).
#[inline]
pub fn spin_loop() {
    #[cfg(not(pss_model_check))]
    std::hint::spin_loop();
    #[cfg(pss_model_check)]
    crate::model::yield_now();
}
