//! Source preprocessing for the lint rules: comment/string stripping,
//! waiver collection, and `#[cfg(test)]` block blanking.
//!
//! The rules are token-level, so before they run the source is reduced
//! to the tokens that can actually violate an invariant: comments and
//! string/char literals are blanked (newlines preserved, so line numbers
//! survive), and code under `#[cfg(test)]` is blanked too — test code
//! has different rules (it may use `SeqCst`, `unwrap`, raw orderings).
//!
//! Waivers: a comment containing `pss-lint: allow(<rule>)` suppresses
//! that rule on the same line and the line below, so a justified
//! exception is written right where it applies:
//!
//! ```text
//! // pss-lint: allow(float-eq)  — exact sentinel comparison
//! if price == f64::INFINITY {
//! ```

/// A preprocessed file ready for rule matching.
pub struct Source {
    /// Blanked lines (same count and width as the original).
    pub lines: Vec<String>,
    /// Per-line waived rule names (already propagated to the next line).
    waivers: Vec<Vec<String>>,
}

impl Source {
    /// Whether `rule` is waived on 0-based line `idx`.
    pub fn waived(&self, idx: usize, rule: &str) -> bool {
        self.waivers
            .get(idx)
            .is_some_and(|w| w.iter().any(|r| r == rule))
    }
}

/// Lexer state while scanning raw source.
#[derive(PartialEq)]
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(usize),
    Char,
}

/// Preprocesses `raw` (see the module docs).
pub fn preprocess(raw: &str) -> Source {
    let stripped = strip(raw);
    let waivers = collect_waivers(raw);
    let lines = blank_test_blocks(stripped);
    Source { lines, waivers }
}

/// Blanks comments and string/char literals, preserving layout.
fn strip(raw: &str) -> Vec<String> {
    let chars: Vec<char> = raw.chars().collect();
    let mut out = String::with_capacity(raw.len());
    let mut mode = Mode::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match mode {
            Mode::Code => match c {
                '/' if next == Some('/') => {
                    mode = Mode::LineComment;
                    out.push(' ');
                }
                '/' if next == Some('*') => {
                    mode = Mode::BlockComment(1);
                    out.push(' ');
                }
                '"' => {
                    mode = Mode::Str;
                    out.push('"');
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string: r"..." or r#"..."#.
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        mode = Mode::RawStr(hashes);
                        out.push('r');
                        for _ in 0..hashes {
                            out.push('#');
                        }
                        out.push('"');
                        i = j;
                    } else {
                        out.push(c);
                    }
                }
                '\'' => {
                    // Char literal vs lifetime: a lifetime is 'ident not
                    // followed by a closing quote (except 'x' the char).
                    let is_char = matches!(next, Some(n) if n == '\\')
                        || (next.is_some() && chars.get(i + 2) == Some(&'\''));
                    if is_char {
                        mode = Mode::Char;
                    }
                    out.push('\'');
                }
                _ => out.push(c),
            },
            Mode::LineComment => {
                if c == '\n' {
                    mode = Mode::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            Mode::BlockComment(depth) => {
                if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 1;
                } else if c == '*' && next == Some('/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    out.push_str("  ");
                    i += 1;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                }
            }
            Mode::Str => match c {
                '\\' => {
                    out.push_str("  ");
                    i += 1;
                    if chars.get(i) == Some(&'\n') {
                        // Escaped newline inside a string literal.
                        out.pop();
                        out.push('\n');
                    }
                }
                '"' => {
                    mode = Mode::Code;
                    out.push('"');
                }
                '\n' => out.push('\n'),
                _ => out.push(' '),
            },
            Mode::RawStr(hashes) => {
                if c == '"' {
                    let closed = (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'));
                    if closed {
                        out.push('"');
                        for _ in 0..hashes {
                            out.push('#');
                        }
                        i += hashes;
                        mode = Mode::Code;
                    } else {
                        out.push(' ');
                    }
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                }
            }
            Mode::Char => {
                if c == '\\' {
                    out.push_str("  ");
                    i += 1;
                } else if c == '\'' {
                    mode = Mode::Code;
                    out.push('\'');
                } else {
                    out.push(' ');
                }
            }
        }
        i += 1;
    }
    out.lines().map(str::to_string).collect()
}

/// Pulls `pss-lint: allow(rule)` waivers out of the *raw* text (they
/// live in comments, which `strip` erases) and propagates each to the
/// following line.
fn collect_waivers(raw: &str) -> Vec<Vec<String>> {
    let line_count = raw.lines().count();
    let mut waivers: Vec<Vec<String>> = vec![Vec::new(); line_count + 1];
    for (idx, line) in raw.lines().enumerate() {
        let mut rest = line;
        while let Some(at) = rest.find("pss-lint: allow(") {
            rest = &rest[at + "pss-lint: allow(".len()..];
            if let Some(end) = rest.find(')') {
                let rule = rest[..end].trim().to_string();
                waivers[idx].push(rule.clone());
                if idx + 1 < waivers.len() {
                    waivers[idx + 1].push(rule);
                }
                rest = &rest[end..];
            } else {
                break;
            }
        }
    }
    waivers.truncate(line_count);
    waivers
}

/// Blanks every brace block introduced by `#[cfg(test)]` (module or
/// item), so rules never fire on test code.
fn blank_test_blocks(mut lines: Vec<String>) -> Vec<String> {
    let text = lines.join("\n");
    let bytes: Vec<char> = text.chars().collect();
    let mut regions: Vec<(usize, usize)> = Vec::new();
    let mut search_from = 0;
    while let Some(found) = text[search_from..].find("#[cfg(test)]") {
        let attr_at = search_from + found;
        // Find the first `{` after the attribute and match it.
        let open = match text[attr_at..].find('{') {
            Some(o) => attr_at + o,
            None => break,
        };
        let mut depth = 0usize;
        let mut close = open;
        for (k, &c) in bytes.iter().enumerate().skip(open) {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        close = k;
                        break;
                    }
                }
                _ => {}
            }
        }
        regions.push((attr_at, close));
        search_from = close.max(attr_at + 1);
    }
    if regions.is_empty() {
        return lines;
    }
    // Map char offsets back to (line, col) and blank the spans.
    let mut offset = 0;
    let mut line_spans = Vec::with_capacity(lines.len());
    for line in &lines {
        let len = line.chars().count();
        line_spans.push((offset, offset + len));
        offset += len + 1;
    }
    for (start, end) in regions {
        for (idx, &(lo, hi)) in line_spans.iter().enumerate() {
            if hi <= start || lo > end {
                continue;
            }
            let from = start.saturating_sub(lo);
            let to = (end + 1 - lo).min(hi - lo);
            let blanked: String = lines[idx]
                .chars()
                .enumerate()
                .map(|(col, c)| if col >= from && col < to { ' ' } else { c })
                .collect();
            lines[idx] = blanked;
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_strings_keeping_lines() {
        let src = "let a = \"Ordering::SeqCst\"; // Ordering::SeqCst\nlet b = 1;\n";
        let s = preprocess(src);
        assert_eq!(s.lines.len(), 2);
        assert!(!s.lines[0].contains("SeqCst"));
        assert_eq!(s.lines[1], "let b = 1;");
    }

    #[test]
    fn waiver_applies_to_own_and_next_line() {
        let src = "// pss-lint: allow(float-eq)\nx == 0.0;\ny == 0.0;\n";
        let s = preprocess(src);
        assert!(s.waived(0, "float-eq"));
        assert!(s.waived(1, "float-eq"));
        assert!(!s.waived(2, "float-eq"));
    }

    #[test]
    fn cfg_test_blocks_are_blanked() {
        let src = "fn live() { a.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { b.unwrap(); }\n}\nfn tail() {}\n";
        let s = preprocess(src);
        assert!(s.lines[0].contains("unwrap"));
        assert!(!s.lines[3].contains("unwrap"));
        assert!(s.lines[5].contains("tail"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "let s = r#\"Ordering::SeqCst \"inner\" \"#; let t = 1;\n";
        let s = preprocess(src);
        assert!(!s.lines[0].contains("SeqCst"));
        assert!(s.lines[0].contains("let t = 1;"));
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } let c = 'y'; let z = Ordering::SeqCst;\n";
        let s = preprocess(src);
        assert!(s.lines[0].contains("SeqCst"));
        assert!(!s.lines[0].contains("'y'"));
    }
}
