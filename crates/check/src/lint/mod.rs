//! `pss-lint`: the workspace invariant linter.
//!
//! Hand-rolled token rules (no syn, no proc-macros — the build is
//! offline) over lightly-lexed sources: comments, strings and
//! `#[cfg(test)]` blocks are blanked first, so rules fire on live code
//! only.  See [`rules`] for the rule table and [`source`] for the
//! preprocessing and the `pss-lint: allow(<rule>)` waiver syntax.
//!
//! The library half is pure (rules take `(path, Source)` and return
//! findings) so `tests/lint_rules.rs` can prove each rule fires on a
//! fixture; the `pss-lint` binary walks the workspace and exits
//! non-zero on any finding.

pub mod rules;
pub mod source;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use rules::Finding;
pub use source::{preprocess, Source};

/// Runs every per-file rule on one (non-test) file.
pub fn check_file(rel_path: &str, src: &Source) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(rules::total_cmp(rel_path, src));
    findings.extend(rules::codec_totality(rel_path, src));
    findings.extend(rules::ordering_outside_facade(rel_path, src));
    findings.extend(rules::no_seqcst(rel_path, src));
    findings.extend(rules::float_eq(rel_path, src));
    findings
}

/// Walks the workspace at `root` and runs every rule, returning all
/// findings sorted by path and line.
pub fn check_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let mut toggles: Vec<(String, String, usize)> = Vec::new();
    for rel in workspace_sources(root)? {
        let raw = fs::read_to_string(root.join(&rel))?;
        if is_crate_root(&rel) {
            findings.extend(rules::crate_attrs(&rel, &raw));
        }
        if rules::is_test_path(&rel) {
            continue;
        }
        let src = preprocess(&raw);
        findings.extend(check_file(&rel, &src));
        for (name, idx) in rules::collect_toggles(&src) {
            toggles.push((name, rel.clone(), idx));
        }
    }
    let matrix = fs::read_to_string(root.join("tests/toggle_matrix.rs")).unwrap_or_default();
    findings.extend(rules::toggle_matrix(&toggles, &matrix));
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(findings)
}

/// Whether `rel` is a crate root subject to the `crate-attrs` rule.
fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs" || (rel.starts_with("crates/") && rel.ends_with("/src/lib.rs"))
}

/// Every workspace-owned `.rs` file (sorted, `/`-separated relative
/// paths).  `vendor/` is out of scope: vendored code keeps its upstream
/// style.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    for top in ["src", "tests", "examples"] {
        collect_rs(&root.join(top), root, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in fs::read_dir(&crates)? {
            let dir = entry?.path();
            for sub in ["src", "tests", "examples", "benches"] {
                collect_rs(&dir.join(sub), root, &mut files)?;
            }
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut stack: Vec<PathBuf> = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = path
                    .strip_prefix(root)
                    .expect("walked paths live under the workspace root")
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
    }
    Ok(())
}
