//! The lint rules: token-level matchers over preprocessed sources.
//!
//! Each rule is a pure function from `(path, Source)` to findings, so
//! the fixture self-tests in `tests/lint_rules.rs` can drive every rule
//! against inline sources and prove it fires.
//!
//! | rule | invariant |
//! |------|-----------|
//! | `total-cmp` | no `.partial_cmp(` calls — prices/densities are totals-ordered via `total_cmp` |
//! | `codec-totality` | no `unwrap`/`expect`/indexing in the total-decode codec modules |
//! | `ordering-outside-facade` | atomic `Ordering::` tokens only inside the `pss-check` facade and its two audited consumers |
//! | `no-seqcst` | `SeqCst` never appears in non-test code (every site must justify a weaker ordering) |
//! | `float-eq` | no bare `==`/`!=` against float literals outside the tolerance module |
//! | `toggle-matrix` | every `pub fn with_*(… bool)` toggle is exercised by `tests/toggle_matrix.rs` |
//! | `crate-attrs` | every crate's `lib.rs` carries its unsafe-code posture attribute |

use super::source::Source;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (also the waiver token).
    pub rule: &'static str,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

fn finding(path: &str, idx: usize, rule: &'static str, message: String) -> Finding {
    Finding {
        path: path.to_string(),
        line: idx + 1,
        rule,
        message,
    }
}

/// Whether `path` (workspace-relative, `/`-separated) is test code: the
/// root and per-crate `tests/` trees, and bench sources (benchmarks
/// assert nothing; they get the test-code dispensation).
pub fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/") || path.contains("/tests/") || path.contains("/benches/")
}

/// `total-cmp`: forbids `.partial_cmp(` calls.  The workspace compares
/// prices, densities and speeds — all finite by construction — and a
/// stray NaN must be a loud bug at its *source*, not a silently-ignored
/// comparison; `f64::total_cmp` keeps every sort total.
pub fn total_cmp(path: &str, src: &Source) -> Vec<Finding> {
    const RULE: &str = "total-cmp";
    let mut out = Vec::new();
    for (idx, line) in src.lines.iter().enumerate() {
        if line.contains(".partial_cmp(") && !src.waived(idx, RULE) {
            out.push(finding(
                path,
                idx,
                RULE,
                "use f64::total_cmp (total order) instead of partial_cmp".into(),
            ));
        }
    }
    out
}

/// The modules `codec-totality` applies to: decoders that must be total
/// functions of arbitrary input bytes.
pub const CODEC_MODULES: &[&str] = &[
    "crates/types/src/snapshot.rs",
    "crates/types/src/seglog.rs",
    "crates/metrics/src/codec.rs",
];

/// `codec-totality`: inside the codec modules, forbids `.unwrap()`,
/// `.expect(` and direct indexing — a decoder fed attacker-controlled or
/// truncated bytes must return `Err`, never panic.
pub fn codec_totality(path: &str, src: &Source) -> Vec<Finding> {
    const RULE: &str = "codec-totality";
    if !CODEC_MODULES.contains(&path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (idx, line) in src.lines.iter().enumerate() {
        if src.waived(idx, RULE) {
            continue;
        }
        if line.contains(".unwrap()") || line.contains(".expect(") {
            out.push(finding(
                path,
                idx,
                RULE,
                "codec modules must be total: return a decode error instead of panicking".into(),
            ));
        }
        if let Some(col) = indexing_site(line) {
            out.push(finding(
                path,
                idx,
                RULE,
                format!(
                    "indexing at column {} can panic on truncated input; \
                     use .get()/slice patterns",
                    col + 1
                ),
            ));
        }
    }
    out
}

/// Finds a `[` that follows an expression (identifier, call, or another
/// index) — i.e. an indexing site, as opposed to an array literal, slice
/// pattern, or attribute.
fn indexing_site(line: &str) -> Option<usize> {
    let chars: Vec<char> = line.chars().collect();
    for (col, &c) in chars.iter().enumerate() {
        if c != '[' || col == 0 {
            continue;
        }
        // Only the directly-adjacent character counts: `buf[`, `f(a)[`,
        // `m[i][` index; `= [`, `([`, `#[` do not.
        let p = chars[col - 1];
        if p.is_alphanumeric() || p == '_' || p == ')' || p == ']' || p == '?' {
            return Some(col);
        }
    }
    None
}

/// Paths allowed to spell atomic orderings: the facade itself and the
/// two fully-audited lock-free consumers.
pub const ORDERING_ALLOWED: &[&str] = &["crates/serve/src/queue.rs", "crates/serve/src/daemon.rs"];

const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Whether `line` contains `Ordering::<atomic variant>` (as opposed to
/// `cmp::Ordering` variants, which are unrestricted).
fn has_atomic_ordering(line: &str) -> bool {
    let mut rest = line;
    while let Some(at) = rest.find("Ordering::") {
        rest = &rest[at + "Ordering::".len()..];
        if ATOMIC_ORDERINGS.iter().any(|v| {
            rest.starts_with(v)
                && !rest[v.len()..]
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
        }) {
            return true;
        }
    }
    false
}

/// `ordering-outside-facade`: atomic `Ordering::` tokens may only appear
/// in the `pss-check` facade/model and the two audited lock-free files
/// (`queue.rs`, `daemon.rs`).  Everything else uses the facade's derived
/// types (`Counter`, `Gauge`, `AtomicF64`), which fix the ordering in
/// one reviewed place.
pub fn ordering_outside_facade(path: &str, src: &Source) -> Vec<Finding> {
    const RULE: &str = "ordering-outside-facade";
    if path.starts_with("crates/check/src") || ORDERING_ALLOWED.contains(&path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (idx, line) in src.lines.iter().enumerate() {
        if has_atomic_ordering(line) && !src.waived(idx, RULE) {
            out.push(finding(
                path,
                idx,
                RULE,
                "atomic orderings belong in pss_check::sync consumers (queue.rs/daemon.rs) \
                 or the facade's derived types — not ad-hoc call sites"
                    .into(),
            ));
        }
    }
    out
}

/// `no-seqcst`: forbids `SeqCst` in non-test code everywhere (including
/// the audited files).  Every synchronisation site must name the weakest
/// sufficient ordering; `SeqCst` is how "I didn't think about it" looks
/// in code.  (The model checker treats SeqCst as AcqRel, so code relying
/// on the global order would also be under-checked.)
pub fn no_seqcst(path: &str, src: &Source) -> Vec<Finding> {
    const RULE: &str = "no-seqcst";
    if path.starts_with("crates/check/src") {
        // The facade/model must spell every ordering to interpret them.
        return Vec::new();
    }
    let mut out = Vec::new();
    for (idx, line) in src.lines.iter().enumerate() {
        if line.contains("SeqCst") && !src.waived(idx, RULE) {
            out.push(finding(
                path,
                idx,
                RULE,
                "SeqCst is banned outside tests: justify and use the weakest \
                 sufficient ordering (see src/README.md, memory-ordering contract)"
                    .into(),
            ));
        }
    }
    out
}

/// The module allowed to compare floats exactly: the tolerance module
/// itself.
pub const FLOAT_EQ_ALLOWED: &[&str] = &["crates/types/src/num.rs"];

/// `float-eq`: forbids `==`/`!=` against a float literal outside the
/// tolerance module.  Accumulated prices/energies carry rounding error;
/// comparisons go through `pss_types::num` (`approx_eq`, `EPS`).  Exact
/// sentinel comparisons (`== 0.0` for "never set") take a waiver with a
/// justification.
pub fn float_eq(path: &str, src: &Source) -> Vec<Finding> {
    const RULE: &str = "float-eq";
    if FLOAT_EQ_ALLOWED.contains(&path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (idx, line) in src.lines.iter().enumerate() {
        if src.waived(idx, RULE) {
            continue;
        }
        if float_literal_comparison(line) {
            out.push(finding(
                path,
                idx,
                RULE,
                "float compared with ==/!= against a literal; use pss_types::num \
                 (approx_eq/EPS) or waive with a justification"
                    .into(),
            ));
        }
    }
    out
}

/// Whether `line` has `== <float literal>` / `<float literal> ==` (or
/// `!=`).  Heuristic: a float literal is `digits.digits` possibly with
/// an exponent or `f64`/`f32` suffix.
fn float_literal_comparison(line: &str) -> bool {
    let chars: Vec<char> = line.chars().collect();
    let n = chars.len();
    for i in 0..n.saturating_sub(1) {
        if !((chars[i] == '=' || chars[i] == '!') && chars[i + 1] == '=') {
            continue;
        }
        // Not part of `===`/`<=`/`>=`/`=>` tokens.
        if chars[i] == '=' && i > 0 && matches!(chars[i - 1], '<' | '>' | '=' | '!') {
            continue;
        }
        if i + 2 < n && chars[i + 2] == '=' {
            continue;
        }
        // Right operand.
        let right: String = chars[i + 2..]
            .iter()
            .skip_while(|c| c.is_whitespace())
            .take_while(|c| c.is_alphanumeric() || **c == '.' || **c == '_')
            .collect();
        // Left operand (scan backwards over one token).
        let left_end = chars[..i].iter().rposition(|c| !c.is_whitespace());
        let left: String = match left_end {
            Some(e) => {
                let start = chars[..=e]
                    .iter()
                    .rposition(|c| !(c.is_alphanumeric() || *c == '.' || *c == '_'))
                    .map(|p| p + 1)
                    .unwrap_or(0);
                chars[start..=e].iter().collect()
            }
            None => String::new(),
        };
        if is_float_literal(&right) || is_float_literal(&left) {
            return true;
        }
    }
    false
}

fn is_float_literal(token: &str) -> bool {
    let t = token.trim_end_matches("f64").trim_end_matches("f32");
    let mut saw_dot = false;
    let mut saw_digit = false;
    for (k, c) in t.chars().enumerate() {
        match c {
            '0'..='9' | '_' => saw_digit = true,
            '.' if k > 0 => saw_dot = true,
            'e' | 'E' if saw_digit => {}
            _ => return false,
        }
    }
    saw_digit && saw_dot
}

/// Collects `(name, 0-based line)` of `pub fn with_*` toggles taking a
/// `bool` — the builder switches `tests/toggle_matrix.rs` must cover.
pub fn collect_toggles(src: &Source) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (idx, line) in src.lines.iter().enumerate() {
        let Some(at) = line.find("pub fn with_") else {
            continue;
        };
        let rest = &line[at + "pub fn ".len()..];
        let Some(paren) = rest.find('(') else {
            continue;
        };
        let name = &rest[..paren];
        if !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
            continue;
        }
        let args = &rest[paren..];
        if args.contains("bool") {
            out.push((name.to_string(), idx));
        }
    }
    out
}

/// `toggle-matrix`: every collected toggle name must appear in the
/// differential toggle-matrix test, so a new `with_*` switch cannot
/// ship without differential coverage.  `matrix_text` is the raw text of
/// `tests/toggle_matrix.rs`.
pub fn toggle_matrix(toggles: &[(String, String, usize)], matrix_text: &str) -> Vec<Finding> {
    const RULE: &str = "toggle-matrix";
    let mut out = Vec::new();
    for (name, path, idx) in toggles {
        if !matrix_text.contains(name.as_str()) {
            out.push(finding(
                path,
                *idx,
                RULE,
                format!("toggle `{name}` is not exercised by tests/toggle_matrix.rs"),
            ));
        }
    }
    out
}

/// Per-crate unsafe-code posture, enforced by `crate-attrs`: `serve` is
/// the only crate allowed `unsafe` (the queue's slot cells), and it must
/// opt into explicit unsafe blocks inside unsafe fns; every other crate
/// forbids unsafe outright.
pub fn required_crate_attr(lib_path: &str) -> &'static str {
    if lib_path == "crates/serve/src/lib.rs" {
        "#![deny(unsafe_op_in_unsafe_fn)]"
    } else {
        "#![forbid(unsafe_code)]"
    }
}

/// `crate-attrs`: checks one `lib.rs` for its required attribute.
pub fn crate_attrs(lib_path: &str, raw: &str) -> Vec<Finding> {
    const RULE: &str = "crate-attrs";
    let required = required_crate_attr(lib_path);
    if raw.lines().any(|l| l.trim() == required) {
        Vec::new()
    } else {
        vec![finding(
            lib_path,
            0,
            RULE,
            format!("missing required crate attribute `{required}`"),
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_heuristic_hits_and_misses() {
        assert!(indexing_site("let x = buf[0];").is_some());
        assert!(indexing_site("let y = f(a)[1];").is_some());
        assert!(indexing_site("let z = m[i][j];").is_some());
        assert!(indexing_site("#[derive(Debug)]").is_none());
        assert!(indexing_site("let a = [0u8; 4];").is_none());
        assert!(indexing_site("let [a, b] = pair;").is_none());
    }

    #[test]
    fn atomic_orderings_detected_cmp_orderings_ignored() {
        assert!(has_atomic_ordering("x.load(Ordering::Acquire)"));
        assert!(has_atomic_ordering("use Ordering::SeqCst;"));
        assert!(!has_atomic_ordering("Ordering::Less => {}"));
        assert!(!has_atomic_ordering("std::cmp::Ordering::Equal"));
        assert!(!has_atomic_ordering("Ordering::Releaseish"));
    }

    #[test]
    fn float_literal_comparisons_detected() {
        assert!(float_literal_comparison("if x == 0.0 {"));
        assert!(float_literal_comparison("if 1.5e3 != y {"));
        assert!(float_literal_comparison("a == 0.25f64"));
        assert!(!float_literal_comparison("if n == 0 {"));
        assert!(!float_literal_comparison("if a <= 0.5 {"));
        assert!(!float_literal_comparison("let f = |x| x >= 1.0;"));
        assert!(!float_literal_comparison("if name == other_name {"));
    }

    #[test]
    fn float_literal_token_shapes() {
        assert!(is_float_literal("0.0"));
        assert!(is_float_literal("12.5f64"));
        assert!(is_float_literal("1_000.25"));
        assert!(!is_float_literal("0"));
        assert!(!is_float_literal("x.len"));
        assert!(!is_float_literal(".5"));
        assert!(!is_float_literal(""));
    }

    #[test]
    fn toggle_collection_requires_bool_arg() {
        let src = super::super::source::preprocess(
            "pub fn with_warm_start(mut self, on: bool) -> Self {\n\
             pub fn with_label(mut self, s: &str) -> Self {\n",
        );
        assert_eq!(
            collect_toggles(&src),
            vec![("with_warm_start".to_string(), 0)]
        );
    }
}
