//! Thread-yield facade: spin-retry loops in the serving layer yield
//! through here so the model checker sees them as schedule points.

/// Yields the current thread.
///
/// `std::thread::yield_now` in normal builds; a scheduler yield point
/// (with no memory effect) under `--cfg pss_model_check`.
#[inline]
pub fn yield_now() {
    #[cfg(not(pss_model_check))]
    std::thread::yield_now();
    #[cfg(pss_model_check)]
    crate::model::yield_now();
}
