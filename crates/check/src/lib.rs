//! # pss-check
//!
//! In-tree correctness tooling for the workspace's concurrent serving
//! layer: a **deterministic interleaving model checker** in the spirit of
//! [loom], and the **`pss-lint`** source-level invariant linter.
//!
//! The offline build has no crates.io access — no loom, no tsan, no miri
//! on CI — so the checker is grown in-tree.  It has two halves:
//!
//! * **The facade** ([`sync`], [`cell`], [`thread`], [`hint`]): the
//!   atomics surface the serving layer is written against.  In normal
//!   builds these are pure re-exports of (or `#[repr(transparent)]`,
//!   `#[inline(always)]` wrappers over) the `std` types — zero cost.
//!   Under `--cfg pss_model_check` they route every load, store and RMW
//!   through the controlled scheduler in [`model`].
//! * **The checker** ([`model`]): bounded-exhaustive DFS over thread
//!   interleavings with preemption bounding.  Atomics keep **per-atomic
//!   store histories** with vector-clock causality, so a `Relaxed` or
//!   insufficiently-ordered load can return *stale* values exactly as a
//!   weak memory model permits — ordering bugs that x86's strong model
//!   hides in stress tests are still explored and caught.  `UnsafeCell`
//!   accesses are checked for data races with a FastTrack-style epoch
//!   race detector.  The model side is always compiled (it is plain safe
//!   `std` code), so the checker's own self-tests run in the tier-1
//!   suite; `--cfg pss_model_check` only controls what the facade
//!   resolves to.
//!
//! The linter ([`lint`], `src/bin/pss-lint.rs`) walks workspace sources
//! with hand-rolled token rules and fails CI on repo-invariant
//! violations; see the [`lint`] module docs for the rule set.
//!
//! [loom]: https://github.com/tokio-rs/loom

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cell;
pub mod hint;
pub mod lint;
pub mod model;
pub mod sync;
pub mod thread;
