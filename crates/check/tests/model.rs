//! Integration self-tests for the model checker: data published through
//! real `UnsafeCell` dereferences, race detection, and a miniature
//! seqlock-style handoff.  These run in the tier-1 suite (the model is
//! always compiled); `--cfg pss_model_check` is *not* required because
//! the tests use the model types directly.

use std::sync::Arc;

use pss_check::model::atomic::{AtomicBool, AtomicUsize};
use pss_check::model::cell::UnsafeCell;
use pss_check::model::{Model, ModelRun};
use pss_check::sync::atomic::Ordering;

/// The pattern every checker-facing container uses: a cell plus an
/// `unsafe impl Sync` whose justification is exactly what the model
/// verifies (all cross-thread access ordered through atomics).
struct Published {
    data: UnsafeCell<u64>,
    ready: AtomicBool,
}

unsafe impl Sync for Published {}

impl Published {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            data: UnsafeCell::new(0),
            ready: AtomicBool::new(false),
        })
    }

    fn publish(&self, value: u64, order: Ordering) {
        self.data.with_mut(|p| unsafe { *p = value });
        self.ready.store(true, order);
    }

    fn try_consume(&self, order: Ordering) -> Option<u64> {
        if self.ready.load(order) {
            Some(self.data.with(|p| unsafe { *p }))
        } else {
            None
        }
    }
}

#[test]
fn message_passing_clean_with_release_acquire() {
    let report = Model::new().check(|| {
        let cell = Published::new();
        let (w, r) = (cell.clone(), cell);
        ModelRun {
            threads: vec![
                Box::new(move || w.publish(42, Ordering::Release)),
                Box::new(move || {
                    if let Some(v) = r.try_consume(Ordering::Acquire) {
                        assert_eq!(v, 42);
                    }
                }),
            ],
            finale: Box::new(|| ()),
        }
    });
    assert!(
        report.interleavings > 2,
        "expected several interleavings, got {report:?}"
    );
    assert!(!report.capped);
}

#[test]
fn message_passing_race_caught_with_relaxed_flag() {
    // Weakening the publication store to Relaxed breaks the ordering
    // between the writer's cell write and the reader's cell read: the
    // checker must report a data race (before any torn read happens —
    // the racing accessor panics prior to dereferencing).
    let report = Model::new().explore(|| {
        let cell = Published::new();
        let (w, r) = (cell.clone(), cell);
        ModelRun {
            threads: vec![
                Box::new(move || w.publish(42, Ordering::Relaxed)),
                Box::new(move || {
                    let _ = r.try_consume(Ordering::Acquire);
                }),
            ],
            finale: Box::new(|| ()),
        }
    });
    let failure = report.failure.expect("the race must be found");
    assert!(
        failure.message.contains("data race"),
        "unexpected failure message: {failure}"
    );
    assert!(
        !failure.schedule.is_empty(),
        "a failure must carry its replayable schedule"
    );
}

#[test]
fn relaxed_acquire_side_also_races() {
    // Release store + Relaxed load: synchronises nothing either.
    let report = Model::new().explore(|| {
        let cell = Published::new();
        let (w, r) = (cell.clone(), cell);
        ModelRun {
            threads: vec![
                Box::new(move || w.publish(42, Ordering::Release)),
                Box::new(move || {
                    let _ = r.try_consume(Ordering::Relaxed);
                }),
            ],
            finale: Box::new(|| ()),
        }
    });
    assert!(report.failure.is_some(), "report: {report:?}");
}

#[test]
fn write_write_race_is_caught() {
    struct Twin(UnsafeCell<u64>);
    unsafe impl Sync for Twin {}
    let report = Model::new().explore(|| {
        let cell = Arc::new(Twin(UnsafeCell::new(0)));
        let (a, b) = (cell.clone(), cell);
        ModelRun {
            threads: vec![
                Box::new(move || a.0.with_mut(|p| unsafe { *p = 1 })),
                Box::new(move || b.0.with_mut(|p| unsafe { *p = 2 })),
            ],
            finale: Box::new(|| ()),
        }
    });
    assert!(report.failure.is_some());
}

#[test]
fn rmw_handoff_orders_cell_access() {
    // A mutex-ish baton built from a single CAS: whoever wins the CAS
    // writes the cell; AcqRel RMWs chain the accesses. Clean.
    struct Baton {
        turn: AtomicUsize,
        slot: UnsafeCell<u64>,
    }
    unsafe impl Sync for Baton {}
    let report = Model::new().check(|| {
        let baton = Arc::new(Baton {
            turn: AtomicUsize::new(0),
            slot: UnsafeCell::new(0),
        });
        let mk = |b: Arc<Baton>, tag: u64| -> Box<dyn FnOnce() + Send> {
            Box::new(move || {
                // One bounded attempt each: the loser skips (bounded
                // models — no unbounded spinning under the checker).
                if b.turn
                    .compare_exchange(0, tag as usize, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    b.slot.with_mut(|p| unsafe { *p = tag });
                }
            })
        };
        let (a, b) = (baton.clone(), baton.clone());
        ModelRun {
            threads: vec![mk(a, 1), mk(b, 2)],
            finale: Box::new(move || {
                let winner = baton.turn.load(Ordering::Relaxed) as u64;
                assert!(winner == 1 || winner == 2);
                baton.slot.with(|p| {
                    let v = unsafe { *p };
                    assert_eq!(v, winner, "slot must hold the CAS winner's tag");
                });
            }),
        }
    });
    assert!(report.interleavings >= 2);
}
