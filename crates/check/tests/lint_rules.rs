//! Fixture self-tests for every `pss-lint` rule: each rule must fire on
//! a minimal violating source and stay quiet on the compliant variant,
//! so a silently-dead rule cannot pass CI.

use pss_check::lint::rules;
use pss_check::lint::{check_file, preprocess};

fn rule_hits(path: &str, src: &str, rule: &str) -> usize {
    check_file(path, &preprocess(src))
        .into_iter()
        .filter(|f| f.rule == rule)
        .count()
}

#[test]
fn total_cmp_fires_on_partial_cmp_call() {
    let bad = "fn f(xs: &mut [f64]) { xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
    assert_eq!(rule_hits("crates/core/src/pd.rs", bad, "total-cmp"), 1);
    let good = "fn f(xs: &mut [f64]) { xs.sort_by(|a, b| a.total_cmp(b)); }\n";
    assert_eq!(rule_hits("crates/core/src/pd.rs", good, "total-cmp"), 0);
    // A `PartialOrd` impl *defines* partial_cmp without calling it.
    let def = "fn partial_cmp(&self, other: &Self) -> Option<Ordering> { None }\n";
    assert_eq!(rule_hits("crates/core/src/pd.rs", def, "total-cmp"), 0);
}

#[test]
fn codec_totality_fires_only_in_codec_modules() {
    let bad = "fn d(b: &[u8]) -> u8 { b[0] }\nfn u(r: Result<u8, ()>) -> u8 { r.unwrap() }\n";
    assert_eq!(
        rule_hits("crates/types/src/snapshot.rs", bad, "codec-totality"),
        2
    );
    assert_eq!(
        rule_hits("crates/metrics/src/codec.rs", bad, "codec-totality"),
        2
    );
    // Same source outside the codec modules: out of scope.
    assert_eq!(rule_hits("crates/core/src/pd.rs", bad, "codec-totality"), 0);
    let good = "fn d(b: &[u8]) -> Option<u8> { b.first().copied() }\n";
    assert_eq!(
        rule_hits("crates/types/src/snapshot.rs", good, "codec-totality"),
        0
    );
}

#[test]
fn codec_totality_ignores_attributes_and_literals() {
    let src = "#[derive(Debug)]\nstruct S;\nconst K: [u8; 2] = [1, 2];\nfn p(b: &[u8]) -> Option<[u8; 2]> { match b { [a, c] => Some([*a, *c]), _ => None } }\n";
    assert_eq!(
        rule_hits("crates/types/src/snapshot.rs", src, "codec-totality"),
        0
    );
}

#[test]
fn ordering_rule_fires_outside_the_audited_files() {
    let bad = "fn f(a: &AtomicUsize) -> usize { a.load(Ordering::Acquire) }\n";
    assert_eq!(
        rule_hits("crates/sim/src/parallel.rs", bad, "ordering-outside-facade"),
        1
    );
    // The two audited lock-free files and the facade itself are exempt.
    assert_eq!(
        rule_hits("crates/serve/src/queue.rs", bad, "ordering-outside-facade"),
        0
    );
    assert_eq!(
        rule_hits("crates/serve/src/daemon.rs", bad, "ordering-outside-facade"),
        0
    );
    assert_eq!(
        rule_hits("crates/check/src/sync.rs", bad, "ordering-outside-facade"),
        0
    );
    // cmp::Ordering is a different enum and is unrestricted.
    let cmp = "fn g(a: i32, b: i32) -> Ordering { if a < b { Ordering::Less } else { Ordering::Greater } }\n";
    assert_eq!(
        rule_hits("crates/sim/src/parallel.rs", cmp, "ordering-outside-facade"),
        0
    );
}

#[test]
fn seqcst_banned_even_in_audited_files() {
    let bad = "fn f(a: &AtomicUsize) -> usize { a.load(Ordering::SeqCst) }\n";
    assert_eq!(rule_hits("crates/serve/src/queue.rs", bad, "no-seqcst"), 1);
    assert_eq!(rule_hits("crates/serve/src/daemon.rs", bad, "no-seqcst"), 1);
    // ...except inside #[cfg(test)] blocks.
    let test_only = "#[cfg(test)]\nmod tests {\n    fn f(a: &AtomicUsize) -> usize { a.load(Ordering::SeqCst) }\n}\n";
    assert_eq!(
        rule_hits("crates/serve/src/queue.rs", test_only, "no-seqcst"),
        0
    );
    // The model interprets orderings, so the facade may spell SeqCst.
    assert_eq!(
        rule_hits("crates/check/src/model/atomic.rs", bad, "no-seqcst"),
        0
    );
}

#[test]
fn float_eq_fires_on_literal_comparisons() {
    let bad = "fn f(x: f64) -> bool { x == 0.0 }\n";
    assert_eq!(rule_hits("crates/core/src/pd.rs", bad, "float-eq"), 1);
    // The tolerance module itself is exempt.
    assert_eq!(rule_hits("crates/types/src/num.rs", bad, "float-eq"), 0);
    // Integer comparisons and range checks are fine.
    let good = "fn g(n: usize, x: f64) -> bool { n == 0 && x <= 1.5 }\n";
    assert_eq!(rule_hits("crates/core/src/pd.rs", good, "float-eq"), 0);
}

#[test]
fn waiver_comment_suppresses_the_named_rule_only() {
    let waived =
        "// pss-lint: allow(float-eq) — exact sentinel\nfn f(x: f64) -> bool { x == 0.0 }\n";
    assert_eq!(rule_hits("crates/core/src/pd.rs", waived, "float-eq"), 0);
    // A waiver for one rule does not silence another.
    let cross = "// pss-lint: allow(float-eq)\nfn f(a: &A) -> usize { a.load(Ordering::SeqCst) }\n";
    assert_eq!(rule_hits("crates/core/src/pd.rs", cross, "no-seqcst"), 1);
    // And it only reaches one line below.
    let too_far = "// pss-lint: allow(float-eq)\nfn f() {}\nfn g(x: f64) -> bool { x == 0.0 }\n";
    assert_eq!(rule_hits("crates/core/src/pd.rs", too_far, "float-eq"), 1);
}

#[test]
fn rules_skip_comments_and_strings() {
    let src = "// a.load(Ordering::SeqCst) in prose\nconst DOC: &str = \"x == 0.0 and b[0] and .partial_cmp(\";\n";
    for rule in ["no-seqcst", "float-eq", "codec-totality", "total-cmp"] {
        assert_eq!(rule_hits("crates/types/src/snapshot.rs", src, rule), 0);
    }
}

#[test]
fn toggle_matrix_flags_uncovered_toggles() {
    let src = preprocess(
        "pub fn with_fast_path(mut self, on: bool) -> Self { self }\n\
         pub fn with_slow_path(mut self, on: bool) -> Self { self }\n",
    );
    let toggles: Vec<(String, String, usize)> = rules::collect_toggles(&src)
        .into_iter()
        .map(|(name, idx)| (name, "crates/x/src/lib.rs".to_string(), idx))
        .collect();
    let matrix = "fn matrix() { b.with_fast_path(true); }";
    let findings = rules::toggle_matrix(&toggles, matrix);
    assert_eq!(findings.len(), 1);
    assert!(findings[0].message.contains("with_slow_path"));
    assert_eq!(findings[0].line, 2);
}

#[test]
fn crate_attrs_requires_the_per_crate_posture() {
    let plain = "#![warn(missing_docs)]\npub fn f() {}\n";
    assert_eq!(rules::crate_attrs("crates/core/src/lib.rs", plain).len(), 1);
    let forbid = "#![forbid(unsafe_code)]\npub fn f() {}\n";
    assert!(rules::crate_attrs("crates/core/src/lib.rs", forbid).is_empty());
    // serve is the one crate allowed unsafe; it must deny implicit
    // unsafe-op-in-unsafe-fn instead.
    assert_eq!(
        rules::crate_attrs("crates/serve/src/lib.rs", forbid).len(),
        1
    );
    let deny = "#![deny(unsafe_op_in_unsafe_fn)]\npub fn f() {}\n";
    assert!(rules::crate_attrs("crates/serve/src/lib.rs", deny).is_empty());
}

#[test]
fn workspace_walk_excludes_vendor() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap();
    let files = pss_check::lint::workspace_sources(root).unwrap();
    assert!(files.iter().any(|f| f == "crates/check/src/lint/rules.rs"));
    assert!(files.iter().any(|f| f == "src/lib.rs"));
    assert!(!files.iter().any(|f| f.starts_with("vendor/")));
    assert!(!files.iter().any(|f| f.starts_with("target/")));
}
