//! A minimal, dependency-free stand-in for the `criterion` benchmark
//! harness.
//!
//! The build environment of this repository has no access to crates.io, so
//! the workspace vendors the small subset of the criterion API its benches
//! use: [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Timing is intentionally simple: each benchmark is warmed up, then run in
//! batches until roughly 100 ms of samples are collected, and the mean and
//! minimum per-iteration times are printed.  The numbers are suitable for
//! relative comparisons and regression spotting, not for statistically
//! rigorous reports.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group, mirroring criterion's
/// `BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A compound id `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            name: format!("{name}/{parameter}"),
        }
    }

    /// An id consisting of a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { name: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { name: s }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] runs and times the
/// benchmarked routine.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording per-iteration wall-clock times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and per-iteration cost estimate.
        let warmup = Instant::now();
        black_box(routine());
        let per_iter = warmup.elapsed().max(Duration::from_nanos(1));
        // Aim for ~100 ms of total measurement, bounded by the sample size.
        let budget = Duration::from_millis(100);
        let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as usize;
        let iters = iters.min(self.sample_size.max(1) * 10);
        self.samples.clear();
        for _ in 0..iters {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self) -> String {
        if self.samples.is_empty() {
            return "no samples".into();
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        format!(
            "mean {:>12?}  min {:>12?}  ({} iters)",
            mean,
            min,
            self.samples.len()
        )
    }
}

/// A named group of related benchmarks, mirroring criterion's
/// `BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the target number of samples (advisory in this stand-in).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher);
        println!("bench {}/{:<32} {}", self.name, id.name, bencher.report());
        self
    }

    /// Benchmarks `routine` under `id` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Ends the group (prints a separator).
    pub fn finish(self) {
        println!();
    }
}

/// The benchmark driver, mirroring criterion's `Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Benchmarks a single function outside of any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("default");
        group.bench_function(id, routine);
        self
    }
}

/// Declares a benchmark group function calling each target with a shared
/// [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` function.  When invoked by `cargo test`
/// (which passes `--test`), the benchmarks are skipped so that test runs
/// stay fast.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}
