//! Workspace facade for the *Profitable Speed Scaling* reproduction
//! (Kling & Pietrzyk, "Profitable Scheduling on Multiple Speed-Scalable
//! Processors", SPAA 2013).
//!
//! This crate only re-exports the member crates so that downstream users
//! (and the repository's own integration tests and examples) can depend on
//! a single package.  See [`pss_core`] for the algorithmic entry points and
//! `ROADMAP.md` for the crate graph.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use pss_core as core;
pub use pss_metrics as metrics;
pub use pss_sim as sim;
pub use pss_workloads as workloads;

/// Convenience prelude: everything `pss_core::prelude` exports, plus the
/// simulator entry points.
pub mod prelude {
    pub use pss_core::prelude::*;
    pub use pss_sim::{
        prefix_stability_report, streaming_prefix_report, ParallelStreamingSimulation, Simulation,
        StreamingSimulation,
    };
}
