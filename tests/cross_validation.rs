//! Cross-validation integration tests: independent implementations of the
//! same mathematical object must agree (YDS vs the convex solver, schedule
//! realisation vs per-interval energies, OA vs its multiprocessor
//! generalisation, PD vs OA in the mandatory-value regime).

mod common;

use common::mandatory as mandatory_instance;
use pss_convex::{solve_min_energy, ProgramContext};
use pss_core::prelude::*;

#[test]
fn yds_and_convex_solver_agree_on_single_machine_energy() {
    for seed in 0..5u64 {
        for alpha in [1.5, 2.0, 3.0] {
            let instance = mandatory_instance(seed, 1, alpha, 10);
            let yds = YdsScheduler
                .schedule(&instance)
                .expect("YDS")
                .cost(&instance)
                .energy;
            let ctx = ProgramContext::new(&instance);
            let convex = solve_min_energy(&ctx).energy;
            assert!(
                (yds - convex).abs() < 2e-4 * yds.max(1.0),
                "seed {seed}, alpha {alpha}: YDS {yds} vs convex {convex}"
            );
        }
    }
}

#[test]
fn realized_schedules_report_the_same_energy_as_the_assignment() {
    for seed in 0..3u64 {
        let instance = mandatory_instance(seed, 3, 2.5, 12);
        let ctx = ProgramContext::new(&instance);
        let sol = solve_min_energy(&ctx);
        let schedule = ctx.realize_schedule(&sol.assignment);
        let energy = schedule.cost(&instance).energy;
        assert!(
            (energy - sol.energy).abs() < 1e-6 * sol.energy.max(1.0),
            "seed {seed}: realized {energy} vs assignment {}",
            sol.energy
        );
        validate_schedule(&instance, &schedule).expect("realized schedule is feasible");
    }
}

#[test]
fn multiprocessor_oa_degenerates_to_oa_on_one_machine() {
    for seed in 0..3u64 {
        let instance = mandatory_instance(seed, 1, 2.0, 8);
        let oa = OaScheduler
            .schedule(&instance)
            .expect("OA")
            .cost(&instance)
            .energy;
        let multi = MultiOaScheduler::default()
            .schedule(&instance)
            .expect("OA(m)")
            .cost(&instance)
            .energy;
        assert!(
            (oa - multi).abs() < 5e-3 * oa.max(1.0),
            "seed {seed}: OA {oa} vs OA(m) {multi}"
        );
    }
}

#[test]
fn pd_with_mandatory_values_behaves_like_oa_on_one_machine() {
    // Section 3 of the paper: for a single processor and sufficiently high
    // values, PD is OA-like.  Their costs need not be identical (the
    // schedules differ structurally, cf. Figure 3) but must be close and
    // both within alpha^alpha of the optimum.
    for seed in 0..3u64 {
        let instance = mandatory_instance(seed, 1, 2.0, 10);
        let opt = YdsScheduler
            .schedule(&instance)
            .expect("YDS")
            .cost(&instance)
            .energy;
        let bound = AlphaPower::new(instance.alpha).competitive_ratio_pd();
        for algo in [&PdScheduler::default() as &dyn Scheduler, &OaScheduler] {
            let cost = algo
                .schedule(&instance)
                .expect("run")
                .cost(&instance)
                .total();
            assert!(
                cost <= bound * opt + 1e-6,
                "seed {seed}: {} cost {cost} exceeds {bound} * {opt}",
                algo.name()
            );
        }
    }
}

#[test]
fn online_and_offline_pd_agree_with_the_simulator_energy() {
    let instance = mandatory_instance(11, 2, 2.0, 14);
    let run = PdScheduler::default().run(&instance).expect("PD run");
    let sim = pss_sim::Simulation
        .run(&instance, &run.schedule)
        .expect("simulate");
    assert!((sim.total_energy - run.cost().energy).abs() < 1e-6 * sim.total_energy.max(1.0));
    let online = OnlinePd::run_instance(&instance).expect("online PD");
    let sim_online = pss_sim::Simulation
        .run(&instance, &online)
        .expect("simulate online");
    assert!((sim_online.total_cost() - sim.total_cost()).abs() < 1e-5 * sim.total_cost().max(1.0));
}
