//! The `Decision` dual-value convention (`pss_types::scheduler`):
//!
//! * accepted jobs report the algorithm's dual variable `λ_j` (PD's water
//!   level) or `0.0` for algorithms without a dual interpretation,
//! * rejected jobs **always** report the job's value (the lost value paid by
//!   the objective).
//!
//! All six online algorithms are checked through the event-driven
//! `on_arrival` API.

mod common;

use common::{easy_instance, hopeless_instance};
use pss_core::prelude::*;

fn drive<A: OnlineAlgorithm>(algo: &A, instance: &Instance) -> Vec<Decision> {
    let mut run = algo.start_for(instance).expect("start");
    instance
        .arrival_order()
        .into_iter()
        .map(|id| {
            let job = instance.job(id);
            run.on_arrival(job, job.release).expect("arrival")
        })
        .collect()
}

#[test]
fn rejecting_algorithms_report_the_lost_value_as_dual() {
    let instance = hopeless_instance();
    // PD and CLL both reject job 0; the dual must be exactly its value.
    for decisions in [
        drive(&PdScheduler::default(), &instance),
        drive(&CllScheduler, &instance),
    ] {
        assert!(!decisions[0].accepted, "hopeless job was accepted");
        assert_eq!(
            decisions[0].dual, 0.001,
            "rejected jobs report their lost value"
        );
        assert!(decisions[1].accepted, "easy job was rejected");
    }
}

#[test]
fn pd_accepted_jobs_report_their_water_level() {
    let instance = easy_instance();
    let batch = PdScheduler::default().run(&instance).expect("batch PD");
    let decisions = drive(&PdScheduler::default(), &instance);
    for (i, d) in decisions.iter().enumerate() {
        assert!(d.accepted);
        assert!(d.dual >= 0.0);
        assert!(
            (d.dual - batch.lambda[i]).abs() <= 1e-6 * batch.lambda[i].max(1.0),
            "PD dual {} differs from batch λ {}",
            d.dual,
            batch.lambda[i]
        );
    }
}

#[test]
fn dual_free_algorithms_report_zero_for_accepted_jobs() {
    let instance = easy_instance();
    for decisions in [
        drive(&OaScheduler, &instance),
        drive(&QoaScheduler::default(), &instance),
        drive(&MultiOaScheduler::default(), &instance),
        drive(&AvrScheduler, &instance),
        drive(&BkpScheduler::default(), &instance),
        drive(&CllScheduler, &instance),
    ] {
        for d in decisions {
            assert!(d.accepted);
            assert_eq!(d.dual, 0.0, "accepted jobs without a dual report 0");
        }
    }
}

#[test]
fn ingress_validation_rejects_malformed_jobs_everywhere() {
    let instance = easy_instance();
    let mut bad = *instance.job(JobId(0));
    bad.work = f64::NAN;

    let mut pd = PdScheduler::default().start_for(&instance).unwrap();
    assert!(pd.on_arrival(&bad, bad.release).is_err());
    let mut oa = OaScheduler.start_for(&instance).unwrap();
    assert!(oa.on_arrival(&bad, bad.release).is_err());
    let mut avr = AvrScheduler.start_for(&instance).unwrap();
    assert!(avr.on_arrival(&bad, bad.release).is_err());
    let mut bkp = BkpScheduler::default().start_for(&instance).unwrap();
    assert!(bkp.on_arrival(&bad, bad.release).is_err());
}
