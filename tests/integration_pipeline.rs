//! End-to-end pipeline integration tests: workload generator → PD →
//! schedule validation → simulator → metrics, checking that every layer
//! agrees with the others.

mod common;

use common::pipeline_families as families;
use pss_core::prelude::*;
use pss_metrics::evaluate_scheduler;
use pss_sim::Simulation;

#[test]
fn pd_schedules_are_feasible_and_consistent_across_layers() {
    for cfg in families() {
        let instance = cfg.generate();
        let run = PdScheduler::default().run(&instance).expect("PD run");

        // Validation layer agrees with the run's accept/reject decisions.
        let report = validate_schedule(&instance, &run.schedule).expect("feasible schedule");
        for (j, accepted) in run.accepted.iter().enumerate() {
            assert_eq!(
                *accepted, report.finished[j],
                "seed {}: job {j} acceptance/finish mismatch",
                cfg.seed
            );
        }

        // Cost accounting agrees between Schedule::cost, the validator and
        // the simulator.
        let cost = run.schedule.cost(&instance);
        assert!((cost.energy - report.energy).abs() < 1e-6 * cost.energy.max(1.0));
        let sim = Simulation
            .run(&instance, &run.schedule)
            .expect("simulation");
        assert!((sim.total_energy - cost.energy).abs() < 1e-6 * cost.energy.max(1.0));
        assert!((sim.lost_value - cost.lost_value).abs() < 1e-9);
        assert!((sim.total_cost() - cost.total()).abs() < 1e-6 * cost.total().max(1.0));

        // The metrics layer reports the same cost.
        let result = evaluate_scheduler(&PdScheduler::default(), &instance).expect("metrics run");
        assert!((result.cost.total() - cost.total()).abs() < 1e-6 * cost.total().max(1.0));
        assert_eq!(
            result.finished_jobs,
            run.accepted.iter().filter(|a| **a).count()
        );
    }
}

#[test]
fn certified_guarantee_holds_on_every_generated_family() {
    for cfg in families() {
        let instance = cfg.generate();
        let run = PdScheduler::default().run(&instance).expect("PD run");
        let analysis = analyze_run(&run);
        assert!(
            analysis.guarantee_holds(),
            "seed {}: cost {} exceeds alpha^alpha * dual bound {} * {}",
            cfg.seed,
            analysis.cost.total(),
            analysis.competitive_bound,
            analysis.dual.value
        );
        // The dual bound can never exceed what any feasible schedule costs;
        // the cheapest trivial schedule rejects everything.
        assert!(analysis.dual.value <= instance.total_value() + 1e-6);
    }
}

#[test]
fn baselines_produce_feasible_schedules_on_shared_workloads() {
    let instance = common::profitable_values(77, 1, 2.0, 15, 0.5, 5.0);

    let algorithms: Vec<Box<dyn Scheduler>> = vec![
        Box::new(PdScheduler::default()),
        Box::new(CllScheduler),
        Box::new(OaScheduler),
        Box::new(AvrScheduler),
        Box::new(QoaScheduler::default()),
        Box::new(BkpScheduler::default()),
        Box::new(YdsScheduler),
        Box::new(MinEnergyScheduler::default()),
    ];
    for algo in &algorithms {
        let schedule = algo.schedule(&instance).expect("algorithm runs");
        validate_schedule(&instance, &schedule)
            .unwrap_or_else(|e| panic!("{} produced an infeasible schedule: {e}", algo.name()));
    }
}

#[test]
fn mandatory_value_instances_are_fully_accepted_by_pd() {
    let instance = common::mandatory(8, 3, 2.5, 20);
    let run = PdScheduler::default().run(&instance).expect("PD run");
    assert!(
        run.accepted.iter().all(|a| *a),
        "PD rejected a mandatory job"
    );
    let report = validate_schedule(&instance, &run.schedule).expect("feasible");
    assert_eq!(report.finished_count(), instance.len());
}
