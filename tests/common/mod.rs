//! Shared instance generators for the cross-crate integration suite.
//!
//! Every integration test binary used to carry its own copy of the same
//! `RandomConfig { value: ProportionalToEnergy, .. }` builders; they now
//! live here once.  Each binary compiles this module independently and uses
//! a subset of it, hence the `dead_code` allowance.

#![allow(dead_code)]

use pss_core::prelude::*;
use pss_workloads::{ArrivalModel, RandomConfig, ValueModel, WorkModel};

/// The base configuration of the "profitable" regime every equivalence and
/// guarantee test sweeps: job values proportional to the job's stand-alone
/// energy (factor 0.3–4.0), putting jobs near the accept/reject boundary.
pub fn profitable_config(seed: u64, machines: usize, alpha: f64, n: usize) -> RandomConfig {
    RandomConfig {
        n_jobs: n,
        machines,
        alpha,
        value: ValueModel::ProportionalToEnergy { min: 0.3, max: 4.0 },
        ..RandomConfig::standard(seed)
    }
}

/// The 10-job profitable instance of the equivalence tests.
pub fn profitable(seed: u64, machines: usize, alpha: f64) -> Instance {
    profitable_config(seed, machines, alpha, 10).generate()
}

/// A profitable instance with an explicit size.
pub fn profitable_n(seed: u64, machines: usize, alpha: f64, n: usize) -> Instance {
    profitable_config(seed, machines, alpha, n).generate()
}

/// A profitable instance with an explicit value-factor range (the
/// competitive-guarantee sweeps use a slightly wider 0.2–4.0 band).
pub fn profitable_values(
    seed: u64,
    machines: usize,
    alpha: f64,
    n: usize,
    min: f64,
    max: f64,
) -> Instance {
    RandomConfig {
        value: ValueModel::ProportionalToEnergy { min, max },
        ..profitable_config(seed, machines, alpha, n)
    }
    .generate()
}

/// Equal-release bursts (bit-identical release times within each burst) —
/// the tied-release adversarial shape of the burst and warm-start pins.
pub fn bursty_profitable(
    seed: u64,
    machines: usize,
    alpha: f64,
    n: usize,
    burst: usize,
) -> Instance {
    RandomConfig {
        arrival: ArrivalModel::Bursty { burst_size: burst },
        ..profitable_config(seed, machines, alpha, n)
    }
    .generate()
}

/// A Poisson stream with a bounded active set (rate jobs per unit time).
pub fn poisson_profitable(seed: u64, machines: usize, alpha: f64, n: usize, rate: f64) -> Instance {
    RandomConfig {
        arrival: ArrivalModel::Poisson { rate },
        ..profitable_config(seed, machines, alpha, n)
    }
    .generate()
}

/// Bursts of near-simultaneous arrivals with distinct microsecond-scale
/// timestamps — the ingestion-grain workload of the coalescing layer.
pub fn bursty_poisson_profitable(
    seed: u64,
    machines: usize,
    alpha: f64,
    n: usize,
    burst: usize,
    rate: f64,
    jitter: f64,
) -> Instance {
    RandomConfig {
        arrival: ArrivalModel::BurstyPoisson {
            rate,
            burst_size: burst,
            jitter,
        },
        ..profitable_config(seed, machines, alpha, n)
    }
    .generate()
}

/// The classical mandatory-completion regime (every value is huge, so no
/// algorithm may reject).
pub fn mandatory(seed: u64, machines: usize, alpha: f64, n: usize) -> Instance {
    RandomConfig {
        value: ValueModel::Mandatory,
        ..profitable_config(seed, machines, alpha, n)
    }
    .generate()
}

/// The hand-crafted tolerance edge case shared by the warm-start, indexed
/// and toggle-matrix pins: equal releases, deadlines tied within `1e-12`,
/// and (nearly) zero-work jobs.
pub fn edge_instance(machines: usize, alpha: f64) -> Instance {
    Instance::from_tuples(
        machines,
        alpha,
        vec![
            (0.0, 2.0, 1.0, 10.0),
            (0.0, 2.0, 1e-9, 10.0), // near-zero work, tied window
            (0.0, 3.0, 1e-9, 10.0),
            (1.0, 3.0, 0.8, 10.0),
            (1.0, 3.0 + 1e-13, 0.4, 10.0), // deadline tied within 1e-12
            (2.0, 5.0, 1.5, 10.0),
        ],
    )
    .unwrap()
}

/// A single job so expensive relative to its value that every profit-aware
/// algorithm rejects it (speed 10 over a unit window — energy 100 at
/// `α = 2` — for a value of 0.001), plus one easy accepted job.
pub fn hopeless_instance() -> Instance {
    Instance::from_tuples(1, 2.0, vec![(0.0, 1.0, 10.0, 0.001), (0.0, 2.0, 0.5, 10.0)]).unwrap()
}

/// An easy mandatory-style instance every algorithm accepts in full.
pub fn easy_instance() -> Instance {
    Instance::from_tuples(1, 2.0, vec![(0.0, 4.0, 1.0, 100.0), (1.0, 3.0, 0.5, 100.0)]).unwrap()
}

/// The three workload families of the end-to-end pipeline test: the
/// standard family, a Poisson multiprocessor family, and a heavy-tailed
/// bursty family.
pub fn pipeline_families() -> Vec<RandomConfig> {
    vec![
        RandomConfig::standard(1),
        RandomConfig {
            n_jobs: 30,
            machines: 4,
            alpha: 3.0,
            arrival: ArrivalModel::Poisson { rate: 2.0 },
            value: ValueModel::ProportionalToEnergy { min: 0.2, max: 5.0 },
            ..RandomConfig::standard(2)
        },
        RandomConfig {
            n_jobs: 24,
            machines: 2,
            alpha: 1.7,
            arrival: ArrivalModel::Bursty { burst_size: 4 },
            work: WorkModel::Pareto {
                shape: 1.3,
                scale: 0.3,
                cap: 8.0,
            },
            value: ValueModel::ProportionalToWork { min: 0.1, max: 3.0 },
            ..RandomConfig::standard(3)
        },
    ]
}
