//! Toggle-matrix differential test: every fast-path toggle combination of
//! every algorithm, against the batch reference.
//!
//! PR 2–4 added per-algorithm fast paths, each with a toggle restoring the
//! original behaviour: warm-started replans (`with_warm_start`), AVR's
//! active-set index (`with_active_index`), BKP's resident speed index and
//! EDF heap (`with_indexed_events`) and its key pruning
//! (`with_key_pruning`), PD's persistent planning context
//! (`with_rebuild_engine`), and the streaming coalescing window
//! (`w ∈ {0, w > 0}`).  The pairwise pins elsewhere cover each toggle in
//! isolation; this suite sweeps the full *matrix* — every combination of
//! each algorithm's toggles crossed with the coalescing mode — on random
//! and adversarial workloads (equal-release bursts, tied deadlines,
//! near-zero works, the Bansal–Kimbrel–Pruhs staircase), pinning every
//! path to the independently coded batch reference.
//!
//! The daemon's checkpoint-encoding toggle
//! (`with_full_frontier_checkpoints`) gets the same treatment: O(active)
//! `(log, blob)` checkpoints vs legacy inline-frontier blobs, crossed
//! with a mid-stream hand-off, pinned bit-identical.

mod common;

use common::{bursty_profitable, edge_instance, profitable_n};
use pss_core::baselines::cll::CllAdmission;
use pss_core::baselines::oa::{MultiOaPlanner, OaPlanner};
use pss_core::baselines::replan::{AdmissionPolicy, AdmitAll, OnlineEnv, Planner, ReplanState};
use pss_core::prelude::*;
use pss_sim::coalesce_arrivals;
use pss_workloads::staircase_instance;

/// The coalescing window of the `w > 0` matrix column.  It only groups
/// bit-equal (well, sub-picosecond) release ties, so the coalesced feed
/// times equal the per-event ones and the batch reference stays the ground
/// truth for *both* columns; the bursty workloads have exact ties, which is
/// where the grouped `on_arrivals` path actually engages.
const WINDOW: f64 = 1e-12;

/// Drives a run over the instance's arrival stream — per-event when
/// `window == 0`, coalesced `on_arrivals` batches otherwise — and returns
/// the finished schedule.
fn drive<R: OnlineScheduler>(mut run: R, instance: &Instance, window: f64) -> Schedule {
    for (feed_time, ids) in coalesce_arrivals(instance, window) {
        let jobs: Vec<Job> = ids.iter().map(|&id| *instance.job(id)).collect();
        if window > 0.0 {
            run.on_arrivals(&jobs, feed_time).expect("burst arrival");
        } else {
            for job in &jobs {
                run.on_arrival(job, feed_time).expect("arrival");
            }
        }
    }
    run.finish().expect("finish")
}

/// Compares a toggled run's schedule against the batch reference: same
/// finished set, same cost, same sampled speed profiles.
fn assert_matches_reference(
    instance: &Instance,
    reference: &Schedule,
    toggled: &Schedule,
    label: &str,
    tol: f64,
) {
    let rc = reference.cost(instance);
    let tc = toggled.cost(instance);
    assert!(
        (rc.total() - tc.total()).abs() <= tol * rc.total().max(1.0),
        "{label}: cost differs — reference {} vs toggled {}",
        rc.total(),
        tc.total()
    );
    assert_eq!(
        reference.unfinished_jobs(instance),
        toggled.unfinished_jobs(instance),
        "{label}: finished sets differ"
    );
    let (lo, hi) = instance.horizon();
    if hi > lo {
        let samples = 120;
        let step = (hi - lo) / samples as f64;
        for i in 0..samples {
            let t = lo + (i as f64 + 0.5) * step;
            let r = reference.total_speed_at(t);
            let g = toggled.total_speed_at(t);
            assert!(
                (r - g).abs() <= tol * r.max(1.0),
                "{label}: speed profile differs at t={t}: reference {r} vs toggled {g}"
            );
        }
    }
}

/// The single-machine workload battery: random near-boundary instances,
/// equal-release bursts, the tied-deadline/near-zero-work edge case, and
/// the BKP staircase lower-bound construction.
fn single_machine_workloads(alpha: f64) -> Vec<(String, Instance)> {
    let mut out = vec![
        ("random-a".into(), profitable_n(9100, 1, alpha, 12)),
        ("random-b".into(), profitable_n(9200, 1, alpha, 12)),
        (
            "equal-release bursts".into(),
            bursty_profitable(9300, 1, alpha, 12, 3),
        ),
        ("tied-deadline edge".into(), edge_instance(1, alpha)),
    ];
    out.push(("staircase".into(), staircase_instance(10, alpha, 1e6)));
    out
}

/// Sweeps the replanning executor's matrix — `with_warm_start` × coalescing
/// — for one planner/admission pair against its batch reference.
fn sweep_replan_matrix<P, A>(
    planner: P,
    admission: A,
    batch_reference: impl Fn(&Instance) -> Schedule,
    workloads: &[(String, Instance)],
    label: &str,
    tol: f64,
) where
    P: Planner + Clone,
    A: AdmissionPolicy + Clone,
{
    for (name, instance) in workloads {
        let reference = batch_reference(instance);
        let env = OnlineEnv {
            machines: instance.machines,
            alpha: instance.alpha,
        };
        for warm in [true, false] {
            for window in [0.0, WINDOW] {
                let run =
                    ReplanState::new(planner.clone(), admission.clone(), env).with_warm_start(warm);
                let schedule = drive(run, instance, window);
                assert_matches_reference(
                    instance,
                    &reference,
                    &schedule,
                    &format!("{label} [{name}] warm={warm} w={window:e}"),
                    tol,
                );
            }
        }
    }
}

#[test]
fn oa_family_toggle_matrix_pins_to_the_batch_reference() {
    let workloads = single_machine_workloads(2.5);
    sweep_replan_matrix(
        OaPlanner { speed_factor: 1.0 },
        AdmitAll,
        |inst| OaScheduler.batch_schedule(inst).expect("batch OA"),
        &workloads,
        "OA",
        1e-9,
    );
    let q = 2.0 - 1.0 / 2.5;
    sweep_replan_matrix(
        OaPlanner::with_factor(q),
        AdmitAll,
        |inst| {
            QoaScheduler { q: Some(q) }
                .batch_schedule(inst)
                .expect("batch qOA")
        },
        &workloads,
        "qOA",
        1e-9,
    );
    sweep_replan_matrix(
        OaPlanner { speed_factor: 1.0 },
        CllAdmission,
        |inst| CllScheduler.batch_schedule(inst).expect("batch CLL"),
        &workloads,
        "CLL",
        1e-9,
    );
}

#[test]
fn multi_oa_toggle_matrix_pins_to_the_batch_reference() {
    // Two machines: the coordinate-descent planner, at solver accuracy.
    let workloads = vec![
        ("random".to_string(), profitable_n(9400, 2, 2.5, 10)),
        (
            "equal-release bursts".to_string(),
            bursty_profitable(9500, 2, 2.5, 12, 3),
        ),
        ("tied-deadline edge".to_string(), edge_instance(2, 2.5)),
    ];
    sweep_replan_matrix(
        MultiOaPlanner {
            options: Default::default(),
        },
        AdmitAll,
        |inst| {
            MultiOaScheduler::default()
                .batch_schedule(inst)
                .expect("batch OA(m)")
        },
        &workloads,
        "OA(m)",
        1e-4,
    );
}

#[test]
fn pd_toggle_matrix_pins_to_the_batch_reference() {
    // PD's toggle is the arrival engine: persistent sparse context vs the
    // rebuild-per-arrival reference, crossed with the coalescing mode.
    for (name, instance) in single_machine_workloads(2.0)
        .into_iter()
        .chain(std::iter::once((
            "random multi".to_string(),
            profitable_n(9600, 2, 2.5, 12),
        )))
    {
        let scheduler = PdScheduler::default();
        let reference = scheduler.run(&instance).expect("batch PD").schedule;
        for rebuild in [false, true] {
            for window in [0.0, WINDOW] {
                let run = if rebuild {
                    OnlinePd::with_options(
                        instance.machines,
                        instance.alpha,
                        scheduler.effective_delta(instance.alpha),
                        scheduler.tol,
                    )
                    .with_rebuild_engine()
                } else {
                    scheduler.start_for(&instance).expect("PD run")
                };
                let schedule = drive(run, &instance, window);
                assert_matches_reference(
                    &instance,
                    &reference,
                    &schedule,
                    &format!("PD [{name}] rebuild={rebuild} w={window:e}"),
                    1e-4,
                );
            }
        }
    }
}

#[test]
fn avr_toggle_matrix_pins_to_the_batch_reference() {
    for (name, instance) in single_machine_workloads(2.0) {
        let reference = AvrScheduler.batch_schedule(&instance).expect("batch AVR");
        for indexed in [true, false] {
            for window in [0.0, WINDOW] {
                let run = AvrScheduler
                    .start_for(&instance)
                    .expect("AVR run")
                    .with_active_index(indexed);
                let schedule = drive(run, &instance, window);
                assert_matches_reference(
                    &instance,
                    &reference,
                    &schedule,
                    &format!("AVR [{name}] indexed={indexed} w={window:e}"),
                    1e-9,
                );
            }
        }
    }
}

#[test]
fn daemon_checkpoint_toggle_matrix_is_bit_identical_across_handoff() {
    // The daemon's `with_full_frontier_checkpoints` toggle swaps the
    // checkpoint *encoding* (O(active) live-state blob + segment log vs
    // legacy inline-frontier blob) without touching the scheduling path:
    // the fed jobs, decision events, price trace and final schedule must
    // be bit-identical across the toggle, and a mid-stream hand-off —
    // which ships a `(log tail, blob)` pair on the seglog path and a
    // plain blob on the legacy path — must be invisible too.
    use pss_serve::{deterministic_fields_equal, Daemon, ServeConfig, Submission, TenantSpec};
    use pss_workloads::arrival_envelopes;

    let instance = profitable_n(9700, 1, 2.0, 20);
    let envelopes = arrival_envelopes(&instance);
    let half = envelopes.len() / 2;

    let run = |full_frontier: bool, handoff: bool| {
        let config = ServeConfig {
            machines: instance.machines,
            alpha: instance.alpha,
            checkpoint_every: 1,
            checkpoint_chain: 3,
            coalesce_window: 0.0,
            ..ServeConfig::default()
        }
        .with_full_frontier_checkpoints(full_frontier);
        // Rejecting (not deferring) on price makes a priced-out submission
        // a terminal, deterministic outcome instead of a retry loop.
        let tenant = TenantSpec::new("t").rejecting_on_price();
        let (mut daemon, handles) =
            Daemon::spawn(CllScheduler, config, vec![tenant]).expect("spawn daemon");
        let mut fed = 0usize;
        for (k, envelope) in envelopes.iter().enumerate() {
            if handoff && k == half {
                daemon.handoff_shard(0).expect("hand-off");
            }
            match handles[0].submit(*envelope).expect("submission admitted") {
                Submission::Queued { .. } => fed += 1,
                Submission::RejectedByPrice { .. } => continue,
            }
            // Serialise the feeds: wait until the worker has ingested this
            // envelope before submitting the next, so every admission gate
            // sees a price that is a pure function of the prefix and the
            // two toggle settings batch identically.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
            while daemon.shard_event_count(0) < fed {
                assert!(
                    std::time::Instant::now() < deadline,
                    "worker stalled ingesting envelope {k}"
                );
                std::thread::yield_now();
            }
        }
        let sizes = daemon.shard_checkpoint_sizes(0);
        let report = daemon.shutdown().expect("clean drain");
        (report, sizes)
    };

    let (live, live_sizes) = run(false, true);
    let (legacy, legacy_sizes) = run(true, true);
    let (unbroken, _) = run(false, false);

    assert!(
        deterministic_fields_equal(&live, &legacy),
        "checkpoint encoding toggle leaked into the scheduling path"
    );
    assert!(
        deterministic_fields_equal(&live, &unbroken),
        "hand-off with (log tail, blob) shipping was not invisible"
    );
    // The point of the segment log: the newest live-state blob undercuts
    // the legacy full-frontier blob captured at the same cut.
    let live_last = *live_sizes.last().expect("live chain nonempty");
    let legacy_last = *legacy_sizes.last().expect("legacy chain nonempty");
    assert!(
        live_last < legacy_last,
        "O(active) blob ({live_last} B) should undercut the full-frontier blob ({legacy_last} B)"
    );
}

#[test]
fn bkp_toggle_matrix_pins_to_the_batch_reference() {
    // BKP has the largest matrix: indexed × pruning × coalescing (pruning
    // is inert on the non-indexed path but swept anyway — the combination
    // must still match).
    let algo = BkpScheduler {
        resolution: 500,
        ..Default::default()
    };
    for (name, instance) in single_machine_workloads(3.0) {
        let reference = algo.batch_schedule(&instance).expect("batch BKP");
        for indexed in [true, false] {
            for pruning in [true, false] {
                for window in [0.0, WINDOW] {
                    let run = algo
                        .start_for(&instance)
                        .expect("BKP run")
                        .with_indexed_events(indexed)
                        .with_key_pruning(pruning);
                    let schedule = drive(run, &instance, window);
                    assert_matches_reference(
                        &instance,
                        &reference,
                        &schedule,
                        &format!("BKP [{name}] indexed={indexed} pruning={pruning} w={window:e}"),
                        1e-6,
                    );
                }
            }
        }
    }
}
