//! Batch-vs-incremental equivalence property test.
//!
//! Every online algorithm in the workspace exists in two forms: the
//! independently coded *batch* reference (`PdScheduler::run`, the
//! `batch_schedule` methods of the baselines — all retained from before the
//! event-driven redesign) and the *incremental* event-driven run driven by
//! the blanket `Scheduler` adapter.  This test asserts that on random
//! workloads both paths produce identical schedules: same accept/reject
//! outcome per job, same cost, and the same machine speed profiles.
//!
//! Segment lists are *not* compared verbatim — time-sharing within an
//! interval may order jobs differently — because the schedule semantics
//! live in the speed profiles and per-job work, which are compared.

mod common;

use common::{bursty_profitable, edge_instance, poisson_profitable, profitable};
use pss_core::baselines::cll::CllAdmission;
use pss_core::baselines::oa::{MultiOaPlanner, OaPlanner};
use pss_core::baselines::replan::{AdmissionPolicy, AdmitAll, OnlineEnv, Planner, ReplanState};
use pss_core::prelude::*;
use pss_core::types::{LogCheckpointable, SegmentLog};

/// Compares two schedules of the same instance as schedules-proper: cost,
/// finished set, and sampled total speed profiles.
fn assert_equivalent(
    instance: &Instance,
    batch: &Schedule,
    incremental: &Schedule,
    label: &str,
    tol: f64,
) {
    let bc = batch.cost(instance);
    let ic = incremental.cost(instance);
    assert!(
        (bc.total() - ic.total()).abs() <= tol * bc.total().max(1.0),
        "{label}: cost differs — batch {} vs incremental {}",
        bc.total(),
        ic.total()
    );
    assert_eq!(
        batch.unfinished_jobs(instance),
        incremental.unfinished_jobs(instance),
        "{label}: finished sets differ"
    );
    let (lo, hi) = instance.horizon();
    if hi > lo {
        let samples = 160;
        let step = (hi - lo) / samples as f64;
        for i in 0..samples {
            let t = lo + (i as f64 + 0.5) * step;
            let b = batch.total_speed_at(t);
            let a = incremental.total_speed_at(t);
            assert!(
                (b - a).abs() <= tol * b.max(1.0),
                "{label}: speed profile differs at t={t}: batch {b} vs incremental {a}"
            );
        }
    }
}

#[test]
fn pd_incremental_equals_batch_on_random_workloads() {
    for seed in 0..6u64 {
        let machines = 1 + (seed % 3) as usize;
        let alpha = 1.5 + 0.5 * (seed % 3) as f64;
        let instance = profitable(4200 + seed, machines, alpha);
        let batch = PdScheduler::default().run(&instance).expect("batch PD");
        let incremental = PdScheduler::default()
            .schedule(&instance)
            .expect("incremental PD");
        // PD's two paths run on different partitions (whole-instance vs
        // refined-on-arrival), so equality is numeric, not bitwise.
        assert_equivalent(&instance, &batch.schedule, &incremental, "PD", 1e-4);
        // Decisions must agree exactly.
        let finished = incremental.finished(&instance);
        for (j, accepted) in batch.accepted.iter().enumerate() {
            assert_eq!(*accepted, finished[j], "PD decision differs for job {j}");
        }
    }
}

#[test]
fn oa_incremental_equals_batch_on_random_workloads() {
    for seed in 0..6u64 {
        let instance = profitable(4300 + seed, 1, 2.0 + 0.5 * (seed % 3) as f64);
        let batch = OaScheduler.batch_schedule(&instance).expect("batch OA");
        let incremental = OaScheduler.schedule(&instance).expect("incremental OA");
        assert_equivalent(&instance, &batch, &incremental, "OA", 1e-9);
    }
}

#[test]
fn qoa_incremental_equals_batch_on_random_workloads() {
    for seed in 0..6u64 {
        let instance = profitable(4400 + seed, 1, 2.5);
        let algo = QoaScheduler::default();
        let batch = algo.batch_schedule(&instance).expect("batch qOA");
        let incremental = algo.schedule(&instance).expect("incremental qOA");
        assert_equivalent(&instance, &batch, &incremental, "qOA", 1e-9);
    }
}

#[test]
fn multi_oa_incremental_equals_batch_on_random_workloads() {
    for seed in 0..4u64 {
        let instance = profitable(4500 + seed, 1 + (seed % 3) as usize, 2.5);
        let algo = MultiOaScheduler::default();
        let batch = algo.batch_schedule(&instance).expect("batch OA(m)");
        // The default incremental run warm-starts coordinate descent from
        // the previous solution; warm and cold descents converge to the same
        // optimum, but only up to the solver's energy tolerance — so the
        // comparison against the from-scratch batch loop is at solver
        // accuracy, not bitwise.
        let incremental = algo.schedule(&instance).expect("incremental OA(m)");
        assert_equivalent(&instance, &batch, &incremental, "OA(m) warm", 1e-4);
        // The cold incremental run performs the identical sequence of
        // from-scratch solves as the batch loop: exact agreement.
        let env = OnlineEnv {
            machines: instance.machines,
            alpha: instance.alpha,
        };
        let planner = MultiOaPlanner {
            options: Default::default(),
        };
        let mut cold = ReplanState::new(planner, AdmitAll, env).with_warm_start(false);
        for id in instance.arrival_order() {
            let job = instance.job(id);
            cold.on_arrival(job, job.release).expect("cold arrival");
        }
        let cold_schedule = cold.finish().expect("cold finish");
        assert_equivalent(&instance, &batch, &cold_schedule, "OA(m) cold", 1e-9);
    }
}

#[test]
fn avr_incremental_equals_batch_on_random_workloads() {
    for seed in 0..6u64 {
        let instance = profitable(4600 + seed, 1, 2.0);
        let batch = AvrScheduler.batch_schedule(&instance).expect("batch AVR");
        let incremental = AvrScheduler.schedule(&instance).expect("incremental AVR");
        assert_equivalent(&instance, &batch, &incremental, "AVR", 1e-9);
        // AVR also guarantees identical per-job work.
        let bw = batch.work_per_job(instance.len());
        let iw = incremental.work_per_job(instance.len());
        for j in 0..instance.len() {
            assert!(
                (bw[j] - iw[j]).abs() < 1e-9,
                "AVR work differs for job {j}: {} vs {}",
                bw[j],
                iw[j]
            );
        }
    }
}

#[test]
fn bkp_incremental_equals_batch_on_random_workloads() {
    for seed in 0..4u64 {
        let instance = profitable(4700 + seed, 1, 3.0);
        // A moderate grid keeps the test fast; the comparison is
        // grid-for-grid so the resolution does not affect equality.
        let algo = BkpScheduler {
            resolution: 800,
            ..Default::default()
        };
        let batch = algo.batch_schedule(&instance).expect("batch BKP");
        let incremental = algo.schedule(&instance).expect("incremental BKP");
        assert_equivalent(&instance, &batch, &incremental, "BKP", 1e-6);
    }
}

#[test]
fn cll_incremental_equals_batch_on_random_workloads() {
    for seed in 0..6u64 {
        let instance = profitable(4800 + seed, 1, 2.0);
        let batch = CllScheduler.batch_schedule(&instance).expect("batch CLL");
        let incremental = CllScheduler.schedule(&instance).expect("incremental CLL");
        assert_equivalent(&instance, &batch, &incremental, "CLL", 1e-9);
    }
}

// ---- Warm-started vs from-scratch arrival paths -------------------------
//
// PR 2 made the arrival step itself incremental: OA-family replans reuse the
// previous YDS solution (`Planner::plan_warm` + `PlanCache`), and PD keeps a
// persistent sparse planning context instead of rebuilding it per arrival.
// These tests pin the warm-started paths to the from-scratch ones on random
// workloads: identical decisions, costs and speed profiles.

/// Drives two fresh `ReplanState` runs — warm-started and from-scratch —
/// over the instance and asserts they are equivalent.
fn assert_warm_equals_cold<P, A>(
    instance: &Instance,
    planner: P,
    admission: A,
    label: &str,
    tol: f64,
) where
    P: Planner + Clone,
    A: AdmissionPolicy + Clone,
{
    let env = OnlineEnv {
        machines: instance.machines,
        alpha: instance.alpha,
    };
    let mut warm = ReplanState::new(planner.clone(), admission.clone(), env);
    let mut cold = ReplanState::new(planner, admission, env).with_warm_start(false);
    for id in instance.arrival_order() {
        let job = instance.job(id);
        let dw = warm.on_arrival(job, job.release).expect("warm arrival");
        let dc = cold.on_arrival(job, job.release).expect("cold arrival");
        assert_eq!(
            dw.accepted, dc.accepted,
            "{label}: decision for {id} differs between warm and cold"
        );
        assert!(
            (dw.dual - dc.dual).abs() <= tol * dc.dual.abs().max(1.0),
            "{label}: dual for {id} differs between warm and cold"
        );
    }
    let warm_schedule = warm.finish().expect("warm finish");
    let cold_schedule = cold.finish().expect("cold finish");
    assert_equivalent(instance, &cold_schedule, &warm_schedule, label, tol);
}

#[test]
fn warm_oa_equals_from_scratch_on_random_workloads() {
    for seed in 0..6u64 {
        let instance = profitable(5100 + seed, 1, 2.0 + 0.5 * (seed % 3) as f64);
        assert_warm_equals_cold(
            &instance,
            OaPlanner { speed_factor: 1.0 },
            AdmitAll,
            "warm OA",
            1e-9,
        );
    }
}

#[test]
fn warm_qoa_equals_from_scratch_on_random_workloads() {
    for seed in 0..6u64 {
        let instance = profitable(5200 + seed, 1, 2.5);
        let q = 2.0 - 1.0 / instance.alpha;
        assert_warm_equals_cold(
            &instance,
            OaPlanner::with_factor(q),
            AdmitAll,
            "warm qOA",
            1e-9,
        );
    }
}

#[test]
fn warm_cll_equals_from_scratch_on_random_workloads() {
    for seed in 0..6u64 {
        let instance = profitable(5300 + seed, 1, 2.0);
        assert_warm_equals_cold(
            &instance,
            OaPlanner { speed_factor: 1.0 },
            CllAdmission,
            "warm CLL",
            1e-9,
        );
    }
}

#[test]
fn warm_replanning_survives_equal_release_times() {
    // Bursty arrivals: several jobs share a release time, so the executor
    // replans once per burst and the warm state absorbs several insertions
    // between executions.
    for seed in 0..4u64 {
        let instance = bursty_profitable(5400 + seed, 1, 2.0, 12, 3);
        assert_warm_equals_cold(
            &instance,
            OaPlanner { speed_factor: 1.0 },
            AdmitAll,
            "warm OA (bursty)",
            1e-9,
        );
        assert_warm_equals_cold(
            &instance,
            OaPlanner { speed_factor: 1.0 },
            CllAdmission,
            "warm CLL (bursty)",
            1e-9,
        );
    }
}

#[test]
fn warm_replanning_survives_near_zero_works_and_tied_deadlines() {
    // Hand-crafted out-of-order-tolerance edge cases: equal releases, tied
    // deadlines and (nearly) zero-work jobs.
    let instance = edge_instance(1, 2.0);
    assert_warm_equals_cold(
        &instance,
        OaPlanner { speed_factor: 1.0 },
        AdmitAll,
        "warm OA (edge)",
        1e-9,
    );
    // The batch reference agrees too.
    let batch = OaScheduler.batch_schedule(&instance).expect("batch OA");
    let warm = OaScheduler.schedule(&instance).expect("warm OA");
    assert_equivalent(&instance, &batch, &warm, "warm OA vs batch (edge)", 1e-9);
}

#[test]
fn pd_persistent_context_equals_rebuild_on_random_workloads() {
    for seed in 0..6u64 {
        let machines = 1 + (seed % 3) as usize;
        let alpha = 1.5 + 0.5 * (seed % 3) as f64;
        let instance = profitable(5500 + seed, machines, alpha);
        let scheduler = PdScheduler::default();
        let mut warm = scheduler.start_for(&instance).expect("incremental PD");
        let mut cold = OnlinePd::with_options(
            instance.machines,
            instance.alpha,
            scheduler.effective_delta(instance.alpha),
            scheduler.tol,
        )
        .with_rebuild_engine();
        for id in instance.arrival_order() {
            let job = instance.job(id);
            let dw = warm.on_arrival(job, job.release).expect("warm arrival");
            let dc = cold.on_arrival(job, job.release).expect("cold arrival");
            assert_eq!(dw.accepted, dc.accepted, "PD decision differs for {id}");
            assert!(
                (dw.dual - dc.dual).abs() <= 1e-7 * dc.dual.abs().max(1.0),
                "PD dual differs for {id}: {} vs {}",
                dw.dual,
                dc.dual
            );
        }
        let warm_schedule = warm.finish().expect("warm finish");
        let cold_schedule = cold.finish().expect("cold finish");
        assert_equivalent(
            &instance,
            &cold_schedule,
            &warm_schedule,
            "PD persistent vs rebuild",
            1e-7,
        );
    }
}

// ---- OA(m): warm-started coordinate descent vs from-scratch solves ------
//
// The multiprocessor planner seeds `solve_min_energy_warm` from the previous
// replan's solution (remapped onto the new partition).  Warm and cold
// descents converge to the same optimum up to the solver's energy
// tolerance, so these pins compare at solver accuracy; decisions must agree
// exactly.

#[test]
fn warm_multi_oa_equals_from_scratch_on_random_workloads() {
    for seed in 0..4u64 {
        let instance = profitable(5600 + seed, 1 + (seed % 3) as usize, 2.5);
        assert_warm_equals_cold(
            &instance,
            MultiOaPlanner {
                options: Default::default(),
            },
            AdmitAll,
            "warm OA(m)",
            1e-4,
        );
    }
}

#[test]
fn warm_multi_oa_survives_bursty_equal_releases() {
    for seed in 0..2u64 {
        let instance = bursty_profitable(5700 + seed, 2, 2.5, 12, 3);
        assert_warm_equals_cold(
            &instance,
            MultiOaPlanner {
                options: Default::default(),
            },
            AdmitAll,
            "warm OA(m) (bursty)",
            1e-4,
        );
    }
}

#[test]
fn warm_multi_oa_survives_near_zero_works_and_tied_deadlines() {
    let instance = edge_instance(2, 2.5);
    assert_warm_equals_cold(
        &instance,
        MultiOaPlanner {
            options: Default::default(),
        },
        AdmitAll,
        "warm OA(m) (edge)",
        1e-4,
    );
}

// ---- AVR / BKP: indexed event paths vs the full-history scans ------------
//
// AVR's active-set index and BKP's deadline/release speed index change only
// *how* the same quantities are computed (summation order aside), so the
// pins are at numeric accuracy, like the OA warm-start ones.

/// Drives two runs over the instance's arrival stream and asserts their
/// decisions and final schedules agree.
fn assert_runs_equivalent<R1: OnlineScheduler, R2: OnlineScheduler>(
    instance: &Instance,
    mut fast: R1,
    mut slow: R2,
    label: &str,
    tol: f64,
) {
    for id in instance.arrival_order() {
        let job = instance.job(id);
        let df = fast.on_arrival(job, job.release).expect("fast arrival");
        let ds = slow.on_arrival(job, job.release).expect("slow arrival");
        assert_eq!(
            df.accepted, ds.accepted,
            "{label}: decision for {id} differs between fast and slow paths"
        );
    }
    let f = fast.finish().expect("fast finish");
    let s = slow.finish().expect("slow finish");
    assert_equivalent(instance, &s, &f, label, tol);
}

#[test]
fn indexed_avr_equals_full_scan_on_random_and_bursty_workloads() {
    for seed in 0..6u64 {
        let instance = profitable(5800 + seed, 1, 2.0);
        let fast = AvrScheduler.start_for(&instance).expect("indexed AVR");
        let slow = AvrScheduler
            .start_for(&instance)
            .expect("scan AVR")
            .with_active_index(false);
        assert_runs_equivalent(&instance, fast, slow, "indexed AVR", 1e-9);
    }
    for seed in 0..3u64 {
        let instance = bursty_profitable(5900 + seed, 1, 2.0, 12, 3);
        let fast = AvrScheduler.start_for(&instance).expect("indexed AVR");
        let slow = AvrScheduler
            .start_for(&instance)
            .expect("scan AVR")
            .with_active_index(false);
        assert_runs_equivalent(&instance, fast, slow, "indexed AVR (bursty)", 1e-9);
    }
}

#[test]
fn indexed_avr_survives_near_zero_works_and_tied_deadlines() {
    let instance = edge_instance(1, 2.0);
    let fast = AvrScheduler.start_for(&instance).expect("indexed AVR");
    let slow = AvrScheduler
        .start_for(&instance)
        .expect("scan AVR")
        .with_active_index(false);
    assert_runs_equivalent(&instance, fast, slow, "indexed AVR (edge)", 1e-9);
}

#[test]
fn indexed_bkp_equals_full_scan_on_random_and_bursty_workloads() {
    let algo = BkpScheduler {
        resolution: 800,
        ..Default::default()
    };
    for seed in 0..4u64 {
        let instance = profitable(6000 + seed, 1, 3.0);
        let fast = algo.start_for(&instance).expect("indexed BKP");
        let slow = algo
            .start_for(&instance)
            .expect("scan BKP")
            .with_indexed_events(false);
        assert_runs_equivalent(&instance, fast, slow, "indexed BKP", 1e-9);
    }
    for seed in 0..2u64 {
        let instance = bursty_profitable(6100 + seed, 1, 3.0, 12, 3);
        let fast = algo.start_for(&instance).expect("indexed BKP");
        let slow = algo
            .start_for(&instance)
            .expect("scan BKP")
            .with_indexed_events(false);
        assert_runs_equivalent(&instance, fast, slow, "indexed BKP (bursty)", 1e-9);
    }
}

#[test]
fn indexed_bkp_survives_near_zero_works_and_tied_deadlines() {
    let instance = edge_instance(1, 3.0);
    let algo = BkpScheduler {
        resolution: 600,
        ..Default::default()
    };
    let fast = algo.start_for(&instance).expect("indexed BKP");
    let slow = algo
        .start_for(&instance)
        .expect("scan BKP")
        .with_indexed_events(false);
    assert_runs_equivalent(&instance, fast, slow, "indexed BKP (edge)", 1e-9);
}

#[test]
fn pruned_bkp_grid_equals_unpruned_on_random_and_bursty_workloads() {
    // The key-pruned speed index (the default) against the full-sweep
    // index: the pruning bound is exact, so the runs must agree at numeric
    // accuracy like the other indexed-vs-scan pins.
    let algo = BkpScheduler {
        resolution: 800,
        ..Default::default()
    };
    for seed in 0..4u64 {
        let instance = profitable(6200 + seed, 1, 3.0);
        let fast = algo.start_for(&instance).expect("pruned BKP");
        let slow = algo
            .start_for(&instance)
            .expect("full BKP")
            .with_key_pruning(false);
        assert_runs_equivalent(&instance, fast, slow, "pruned BKP", 1e-9);
    }
    for seed in 0..2u64 {
        let instance = poisson_profitable(6300 + seed, 1, 3.0, 60, 4.0);
        let fast = algo.start_for(&instance).expect("pruned BKP");
        let slow = algo
            .start_for(&instance)
            .expect("full BKP")
            .with_key_pruning(false);
        assert_runs_equivalent(&instance, fast, slow, "pruned BKP (stream)", 1e-9);
    }
}

// ---- Burst ingestion: on_arrivals vs the on_arrival loop ----------------
//
// The batch ingestion paths (`OnlineScheduler::on_arrivals`: one replan /
// one index merge / one frontier commit per burst) must be observably
// equivalent to feeding the same jobs one at a time at the same instant:
// identical decisions and duals, and the same final schedule.  Exact for
// the combinatorial algorithms, solver accuracy for OA(m); the b = 1
// degenerate feed must be *bit-identical* to the per-event path.

use pss_workloads::SmallRng;

/// The instance's arrival stream grouped into its equal-release bursts
/// (bit-equal times, as the bursty generators produce).
fn equal_release_bursts(instance: &Instance) -> Vec<(f64, Vec<Job>)> {
    let mut bursts: Vec<(f64, Vec<Job>)> = Vec::new();
    for id in instance.arrival_order() {
        let job = *instance.job(id);
        match bursts.last_mut() {
            Some((t, jobs)) if job.release == *t => jobs.push(job),
            _ => bursts.push((job.release, vec![job])),
        }
    }
    bursts
}

/// Splits every burst into random sub-bursts (all sharing the release), so
/// the batch path is exercised at ragged sizes, not only full bursts.
fn ragged_bursts(bursts: &[(f64, Vec<Job>)], rng: &mut SmallRng) -> Vec<(f64, Vec<Job>)> {
    let mut out = Vec::new();
    for (t, jobs) in bursts {
        let mut rest = &jobs[..];
        while !rest.is_empty() {
            let take = rng.usize_range(1, rest.len());
            out.push((*t, rest[..take].to_vec()));
            rest = &rest[take..];
        }
    }
    out
}

fn drive_loop<R: OnlineScheduler>(
    mut run: R,
    bursts: &[(f64, Vec<Job>)],
) -> (Vec<Decision>, Schedule) {
    let mut decisions = Vec::new();
    for (t, jobs) in bursts {
        for job in jobs {
            decisions.push(run.on_arrival(job, *t).expect("loop arrival"));
        }
    }
    (decisions, run.finish().expect("loop finish"))
}

fn drive_bursts<R: OnlineScheduler>(
    mut run: R,
    bursts: &[(f64, Vec<Job>)],
) -> (Vec<Decision>, Schedule) {
    let mut decisions = Vec::new();
    for (t, jobs) in bursts {
        decisions.extend(run.on_arrivals(jobs, *t).expect("burst arrival"));
    }
    (decisions, run.finish().expect("burst finish"))
}

/// Asserts the burst feed of `make_run()` matches the one-at-a-time feed:
/// exact decisions, duals within `tol`, equivalent schedules.
fn assert_bursts_equal_loop<R: OnlineScheduler>(
    instance: &Instance,
    bursts: &[(f64, Vec<Job>)],
    mut make_run: impl FnMut() -> R,
    label: &str,
    tol: f64,
) {
    let (ld, ls) = drive_loop(make_run(), bursts);
    let (bd, bs) = drive_bursts(make_run(), bursts);
    assert_eq!(ld.len(), bd.len(), "{label}: decision counts differ");
    for (i, (l, b)) in ld.iter().zip(&bd).enumerate() {
        assert_eq!(
            l.accepted, b.accepted,
            "{label}: decision {i} differs between loop and burst feed"
        );
        assert!(
            (l.dual - b.dual).abs() <= tol * l.dual.abs().max(1.0),
            "{label}: dual {i} differs — loop {} vs burst {}",
            l.dual,
            b.dual
        );
    }
    assert_equivalent(instance, &ls, &bs, label, tol);
}

#[test]
fn burst_feed_equals_loop_for_every_algorithm() {
    for seed in 0..3u64 {
        let single = bursty_profitable(7000 + seed, 1, 2.0 + 0.5 * (seed % 3) as f64, 16, 4);
        let multi = bursty_profitable(7100 + seed, 2, 2.5, 16, 4);
        let bursts = equal_release_bursts(&single);
        let mut rng = SmallRng::seed_from_u64(7200 + seed);
        let ragged = ragged_bursts(&bursts, &mut rng);
        let multi_bursts = equal_release_bursts(&multi);

        for groups in [&bursts, &ragged] {
            assert_bursts_equal_loop(
                &single,
                groups,
                || OaScheduler.start_for(&single).expect("OA run"),
                "burst OA",
                1e-9,
            );
            assert_bursts_equal_loop(
                &single,
                groups,
                || QoaScheduler::default().start_for(&single).expect("qOA run"),
                "burst qOA",
                1e-9,
            );
            assert_bursts_equal_loop(
                &single,
                groups,
                || CllScheduler.start_for(&single).expect("CLL run"),
                "burst CLL",
                1e-9,
            );
            assert_bursts_equal_loop(
                &single,
                groups,
                || AvrScheduler.start_for(&single).expect("AVR run"),
                "burst AVR",
                1e-9,
            );
            let bkp = BkpScheduler {
                resolution: 600,
                ..Default::default()
            };
            assert_bursts_equal_loop(
                &single,
                groups,
                || bkp.start_for(&single).expect("BKP run"),
                "burst BKP",
                1e-9,
            );
            assert_bursts_equal_loop(
                &single,
                groups,
                || PdScheduler::default().start_for(&single).expect("PD run"),
                "burst PD",
                1e-7,
            );
        }
        // OA(m) on two machines, at solver accuracy with exact decisions.
        assert_bursts_equal_loop(
            &multi,
            &multi_bursts,
            || {
                MultiOaScheduler::default()
                    .start_for(&multi)
                    .expect("OA(m) run")
            },
            "burst OA(m)",
            1e-4,
        );
    }
}

#[test]
fn whole_instance_as_one_burst_equals_loop() {
    // Every job shares one release time: the entire instance is a single
    // on_arrivals call.
    let instance = bursty_profitable(7300, 1, 2.0, 12, 12);
    let bursts = equal_release_bursts(&instance);
    assert_eq!(bursts.len(), 1, "expected a single burst");
    assert_eq!(bursts[0].1.len(), 12);
    assert_bursts_equal_loop(
        &instance,
        &bursts,
        || OaScheduler.start_for(&instance).expect("OA run"),
        "one-burst OA",
        1e-9,
    );
    assert_bursts_equal_loop(
        &instance,
        &bursts,
        || CllScheduler.start_for(&instance).expect("CLL run"),
        "one-burst CLL",
        1e-9,
    );
    assert_bursts_equal_loop(
        &instance,
        &bursts,
        || PdScheduler::default().start_for(&instance).expect("PD run"),
        "one-burst PD",
        1e-7,
    );
    assert_bursts_equal_loop(
        &instance,
        &bursts,
        || AvrScheduler.start_for(&instance).expect("AVR run"),
        "one-burst AVR",
        1e-9,
    );
}

#[test]
fn singleton_bursts_are_bit_identical_to_the_per_event_path() {
    // b = 1 degenerate case: feeding every job as a one-element slice must
    // produce bit-identical segments, not merely equivalent schedules.
    let instance = profitable(7400, 1, 2.5);
    let singletons: Vec<(f64, Vec<Job>)> = instance
        .arrival_order()
        .into_iter()
        .map(|id| (instance.job(id).release, vec![*instance.job(id)]))
        .collect();
    macro_rules! pin {
        ($label:expr, $make:expr) => {{
            let (ld, ls) = drive_loop($make, &singletons);
            let (bd, bs) = drive_bursts($make, &singletons);
            assert_eq!(ld, bd, "{}: decisions not bit-identical", $label);
            assert_eq!(
                ls.segments, bs.segments,
                "{}: segments not bit-identical",
                $label
            );
        }};
    }
    pin!("OA", OaScheduler.start_for(&instance).expect("OA run"));
    pin!(
        "qOA",
        QoaScheduler::default()
            .start_for(&instance)
            .expect("qOA run")
    );
    pin!("CLL", CllScheduler.start_for(&instance).expect("CLL run"));
    pin!("AVR", AvrScheduler.start_for(&instance).expect("AVR run"));
    pin!(
        "BKP",
        BkpScheduler {
            resolution: 500,
            ..Default::default()
        }
        .start_for(&instance)
        .expect("BKP run")
    );
    pin!(
        "PD",
        PdScheduler::default().start_for(&instance).expect("PD run")
    );
    let multi = profitable(7500, 2, 2.5);
    let multi_singletons: Vec<(f64, Vec<Job>)> = multi
        .arrival_order()
        .into_iter()
        .map(|id| (multi.job(id).release, vec![*multi.job(id)]))
        .collect();
    let (ld, ls) = drive_loop(
        MultiOaScheduler::default()
            .start_for(&multi)
            .expect("OA(m)"),
        &multi_singletons,
    );
    let (bd, bs) = drive_bursts(
        MultiOaScheduler::default()
            .start_for(&multi)
            .expect("OA(m)"),
        &multi_singletons,
    );
    assert_eq!(ld, bd, "OA(m): decisions not bit-identical");
    assert_eq!(
        ls.segments, bs.segments,
        "OA(m): segments not bit-identical"
    );
}

// ---- Checkpoint/restore: snapshots at arbitrary cut points ---------------
//
// Every online run state implements `Checkpointable`: suspending a run into
// a `StateBlob` and restoring it must not perturb a single future decision.
// These pins drive each algorithm twice over the same stream — once
// uninterrupted, once snapshotted/restored at a cut point — and assert the
// decisions, duals and schedules are bit-identical (solver accuracy with
// exact decisions for OA(m), whose restored descent re-runs the identical
// warm-seeded solves).  Cut points include every burst boundary shape:
// between bursts, immediately after a burst, and *mid-burst* (a burst split
// across the snapshot, both halves fed at the same instant).
//
// Since PR 10 every run state also implements `LogCheckpointable`: the
// committed frontier lives in an append-only `SegmentLog` and blobs carry
// only live state plus a log cursor.  The `(log, blob)` pins below mirror
// the full-frontier ones cut-for-cut, and additionally drill the daemon's
// compact-at-capture retention: recovery from every depth of a bounded
// checkpoint chain over a compacted log.

/// Bit-compares a restored run's decision stream and final schedule
/// against the uninterrupted baseline.  With `exact` false (OA(m), whose
/// restored descent re-runs warm-seeded solves) duals and segments are
/// compared to solver accuracy while decisions stay exact.
fn assert_stream_matches(
    baseline_decisions: &[Decision],
    decisions: &[Decision],
    baseline_schedule: &Schedule,
    schedule: &Schedule,
    label: &str,
    cut: usize,
    exact: bool,
) {
    assert_eq!(
        decisions.len(),
        baseline_decisions.len(),
        "{label} cut {cut}: decision counts differ"
    );
    for (i, (a, b)) in baseline_decisions.iter().zip(decisions).enumerate() {
        assert_eq!(
            a.accepted, b.accepted,
            "{label} cut {cut}: decision {i} differs after restore"
        );
        if exact {
            assert_eq!(
                a.dual.to_bits(),
                b.dual.to_bits(),
                "{label} cut {cut}: dual {i} not bit-identical after restore"
            );
        } else {
            assert!(
                (a.dual - b.dual).abs() <= 1e-9 * a.dual.abs().max(1.0),
                "{label} cut {cut}: dual {i} differs after restore"
            );
        }
    }
    if exact {
        assert_eq!(
            baseline_schedule.segments, schedule.segments,
            "{label} cut {cut}: schedule not bit-identical after restore"
        );
    } else {
        // Iterative planner: solver-accuracy equivalence with exact
        // decisions (asserted above).
        assert_eq!(baseline_schedule.machines, schedule.machines);
        assert_eq!(
            baseline_schedule.segments.len(),
            schedule.segments.len(),
            "{label} cut {cut}: restored run emitted a different segment count"
        );
        for (a, b) in baseline_schedule.segments.iter().zip(&schedule.segments) {
            assert!(
                a.machine == b.machine
                    && a.job == b.job
                    && (a.start - b.start).abs() < 1e-9
                    && (a.end - b.end).abs() < 1e-9
                    && (a.speed - b.speed).abs() < 1e-9 * a.speed.abs().max(1.0),
                "{label} cut {cut}: restored segments drift beyond solver accuracy"
            );
        }
    }
}

/// Drives `make_run()` over the burst stream uninterrupted, and once per
/// cut point with a snapshot/wire-round-trip/restore at the cut, comparing
/// decisions and final schedules.
fn assert_restore_equivalent<R>(
    bursts: &[(f64, Vec<Job>)],
    mut make_run: impl FnMut() -> R,
    label: &str,
    exact: bool,
) where
    R: OnlineScheduler + Checkpointable,
{
    // Flatten to per-event feeds so cuts can land mid-burst: feed events
    // [0, cut) one way, snapshot, restore, feed [cut, n) — with every event
    // of a burst fed at the burst's time, so splitting a burst is exactly
    // the ragged sub-burst shape the burst-equivalence pins cover.
    let feeds: Vec<(f64, Job)> = bursts
        .iter()
        .flat_map(|(t, jobs)| jobs.iter().map(|j| (*t, *j)))
        .collect();
    let mut baseline_run = make_run();
    let mut baseline_decisions = Vec::new();
    for (t, job) in &feeds {
        baseline_decisions.push(baseline_run.on_arrival(job, *t).expect("baseline arrival"));
    }
    let baseline_schedule = baseline_run.finish().expect("baseline finish");

    // Cut points: start, one mid-burst, one immediately after a burst,
    // mid-stream, end — or, under `CHECKPOINT_SMOKE=1` (the CI checkpoint
    // smoke step), *every* cut point of the stream.
    let first_burst = bursts.first().map(|(_, j)| j.len()).unwrap_or(0);
    let cuts: Vec<usize> = if std::env::var("CHECKPOINT_SMOKE").is_ok() {
        (0..=feeds.len()).collect()
    } else {
        vec![
            0,
            1.min(feeds.len()),           // mid-first-burst (bursts have >1 job)
            first_burst.min(feeds.len()), // immediately after the first burst
            feeds.len() / 2,
            feeds.len(),
        ]
    };
    for &cut in &cuts {
        let mut run = make_run();
        let mut decisions = Vec::new();
        for (t, job) in &feeds[..cut] {
            decisions.push(run.on_arrival(job, *t).expect("pre-cut arrival"));
        }
        // Suspend through the full wire format and resume.
        let wire = run.snapshot().to_bytes();
        drop(run);
        let blob = StateBlob::from_bytes(&wire).expect("wire round-trip");
        let mut resumed = R::restore(&blob).expect("restore");
        for (t, job) in &feeds[cut..] {
            decisions.push(resumed.on_arrival(job, *t).expect("post-cut arrival"));
        }
        let schedule = resumed.finish().expect("restored finish");
        assert_stream_matches(
            &baseline_decisions,
            &decisions,
            &baseline_schedule,
            &schedule,
            label,
            cut,
            exact,
        );
    }
}

/// The `(log, blob)` twin of [`assert_restore_equivalent`]: the run keeps a
/// realised-segment log synced after every arrival; at the cut it is
/// suspended with [`LogCheckpointable::snapshot_live`] (O(active) blob plus
/// log cursor), the log is compacted to the capture cursor exactly as the
/// daemon does at capture time, both halves cross the wire independently,
/// the log is truncated back to the cursor (WAL discipline — records past
/// the checkpoint are discarded on recovery), and the run is reassembled
/// with [`LogCheckpointable::restore_with_log`].  Every future decision,
/// the reassembled frontier, and the final schedule must match the
/// uninterrupted run.
fn assert_log_restore_equivalent<R>(
    bursts: &[(f64, Vec<Job>)],
    mut make_run: impl FnMut() -> R,
    label: &str,
    exact: bool,
) where
    R: OnlineScheduler + LogCheckpointable,
{
    let feeds: Vec<(f64, Job)> = bursts
        .iter()
        .flat_map(|(t, jobs)| jobs.iter().map(|j| (*t, *j)))
        .collect();
    let mut baseline_run = make_run();
    let mut baseline_decisions = Vec::new();
    for (t, job) in &feeds {
        baseline_decisions.push(baseline_run.on_arrival(job, *t).expect("baseline arrival"));
    }
    let baseline_schedule = baseline_run.finish().expect("baseline finish");

    let first_burst = bursts.first().map(|(_, j)| j.len()).unwrap_or(0);
    let exhaustive =
        std::env::var("CHECKPOINT_SMOKE").is_ok() || std::env::var("SEGLOG_SMOKE").is_ok();
    let cuts: Vec<usize> = if exhaustive {
        (0..=feeds.len()).collect()
    } else {
        vec![
            0,
            1.min(feeds.len()),           // mid-first-burst
            first_burst.min(feeds.len()), // immediately after the first burst
            feeds.len() / 2,
            feeds.len(),
        ]
    };
    for &cut in &cuts {
        let mut run = make_run();
        let mut log = SegmentLog::new(run.frontier().machines);
        let mut decisions = Vec::new();
        for (t, job) in &feeds[..cut] {
            decisions.push(run.on_arrival(job, *t).expect("pre-cut arrival"));
            log.sync_from(run.frontier()).expect("pre-cut log sync");
        }
        // Capture: live-only blob + cursor, compact the log to the cursor
        // (the daemon's capture-time discipline), and send both halves
        // through their wire formats independently.
        let blob = run.snapshot_live(&mut log).expect("live snapshot");
        let cursor = log.cursor();
        log.compact(cursor);
        assert_eq!(
            log.record_count(),
            0,
            "{label} cut {cut}: capture must compact the log's record envelopes"
        );
        let wire = blob.to_bytes();
        let log_wire = log.to_bytes();
        drop(run);
        drop(log);
        let decoded = StateBlob::from_bytes(&wire).expect("blob wire round-trip");
        let mut log = SegmentLog::from_bytes(&log_wire).expect("log wire round-trip");
        log.truncate(cursor).expect("truncate to checkpoint cursor");
        let mut resumed = R::restore_with_log(&decoded, &log).expect("restore with log");
        for (t, job) in &feeds[cut..] {
            decisions.push(resumed.on_arrival(job, *t).expect("post-cut arrival"));
            log.sync_from(resumed.frontier())
                .expect("post-cut log sync");
        }
        // The re-synced log reassembles the resumed run's committed
        // frontier bit-for-bit at its own cursor.
        let reassembled = log.reassemble(log.cursor()).expect("reassemble");
        assert_eq!(
            reassembled.segments,
            resumed.frontier().segments,
            "{label} cut {cut}: log does not reassemble the resumed frontier"
        );
        let schedule = resumed.finish().expect("restored finish");
        assert_stream_matches(
            &baseline_decisions,
            &decisions,
            &baseline_schedule,
            &schedule,
            label,
            cut,
            exact,
        );
    }
}

/// The burst stream of an instance (bit-equal release times grouped).
fn as_bursts(instance: &Instance) -> Vec<(f64, Vec<Job>)> {
    equal_release_bursts(instance)
}

#[test]
fn restored_runs_continue_bit_identically_for_every_algorithm() {
    for seed in 0..3u64 {
        let single = bursty_profitable(7600 + seed, 1, 2.0 + 0.5 * (seed % 3) as f64, 16, 4);
        let bursts = as_bursts(&single);
        assert_restore_equivalent(
            &bursts,
            || OaScheduler.start_for(&single).expect("OA run"),
            "restore OA",
            true,
        );
        assert_restore_equivalent(
            &bursts,
            || QoaScheduler::default().start_for(&single).expect("qOA run"),
            "restore qOA",
            true,
        );
        assert_restore_equivalent(
            &bursts,
            || CllScheduler.start_for(&single).expect("CLL run"),
            "restore CLL",
            true,
        );
        assert_restore_equivalent(
            &bursts,
            || AvrScheduler.start_for(&single).expect("AVR run"),
            "restore AVR",
            true,
        );
        let bkp = BkpScheduler {
            resolution: 500,
            ..Default::default()
        };
        assert_restore_equivalent(
            &bursts,
            || bkp.start_for(&single).expect("BKP run"),
            "restore BKP",
            true,
        );
        assert_restore_equivalent(
            &bursts,
            || PdScheduler::default().start_for(&single).expect("PD run"),
            "restore PD",
            true,
        );
        let multi = bursty_profitable(7700 + seed, 2, 2.5, 12, 3);
        let multi_bursts = as_bursts(&multi);
        assert_restore_equivalent(
            &multi_bursts,
            || {
                MultiOaScheduler::default()
                    .start_for(&multi)
                    .expect("OA(m) run")
            },
            "restore OA(m)",
            false,
        );
    }
}

#[test]
fn log_restored_runs_continue_bit_identically_for_every_algorithm() {
    // The O(active) twin of the pin above: every algorithm, same workloads,
    // suspended at the same cut points (all of them under CHECKPOINT_SMOKE)
    // through the (log, blob) pair instead of a full-frontier blob.
    for seed in 0..3u64 {
        let single = bursty_profitable(7600 + seed, 1, 2.0 + 0.5 * (seed % 3) as f64, 16, 4);
        let bursts = as_bursts(&single);
        assert_log_restore_equivalent(
            &bursts,
            || OaScheduler.start_for(&single).expect("OA run"),
            "log-restore OA",
            true,
        );
        assert_log_restore_equivalent(
            &bursts,
            || QoaScheduler::default().start_for(&single).expect("qOA run"),
            "log-restore qOA",
            true,
        );
        assert_log_restore_equivalent(
            &bursts,
            || CllScheduler.start_for(&single).expect("CLL run"),
            "log-restore CLL",
            true,
        );
        assert_log_restore_equivalent(
            &bursts,
            || AvrScheduler.start_for(&single).expect("AVR run"),
            "log-restore AVR",
            true,
        );
        let bkp = BkpScheduler {
            resolution: 500,
            ..Default::default()
        };
        assert_log_restore_equivalent(
            &bursts,
            || bkp.start_for(&single).expect("BKP run"),
            "log-restore BKP",
            true,
        );
        assert_log_restore_equivalent(
            &bursts,
            || PdScheduler::default().start_for(&single).expect("PD run"),
            "log-restore PD",
            true,
        );
        let multi = bursty_profitable(7700 + seed, 2, 2.5, 12, 3);
        let multi_bursts = as_bursts(&multi);
        assert_log_restore_equivalent(
            &multi_bursts,
            || {
                MultiOaScheduler::default()
                    .start_for(&multi)
                    .expect("OA(m) run")
            },
            "log-restore OA(m)",
            false,
        );
    }
}

#[test]
fn compacted_log_recovers_from_every_retained_checkpoint_depth() {
    // A capture after every burst feeds a bounded chain of (cursor, blob)
    // records with the log compacted to each capture's cursor — the
    // daemon's retention discipline.  For every retained-chain depth the
    // daemon can be configured with, recovery from EVERY record still in
    // the chain (not just the newest) must replay to the exact baseline:
    // compaction folds records into the prefix but never loses the segment
    // data an older cursor needs.
    let instance = bursty_profitable(7900, 1, 2.5, 16, 4);
    let bursts = as_bursts(&instance);

    let mut baseline_run = CllScheduler.start_for(&instance).expect("CLL run");
    let mut baseline_decisions = Vec::new();
    for (t, jobs) in &bursts {
        baseline_decisions.extend(baseline_run.on_arrivals(jobs, *t).expect("baseline burst"));
    }
    let baseline_schedule = baseline_run.finish().expect("baseline finish");

    for retain in 1..=4usize {
        let mut run = CllScheduler.start_for(&instance).expect("CLL run");
        let mut log = SegmentLog::new(instance.machines);
        let mut chain = Vec::new();
        let mut decisions_done = 0usize;
        for (done, (t, jobs)) in bursts.iter().enumerate() {
            decisions_done += run.on_arrivals(jobs, *t).expect("burst").len();
            let blob = run.snapshot_live(&mut log).expect("capture");
            let cursor = log.cursor();
            log.compact(cursor);
            assert_eq!(log.record_count(), 0, "capture must compact the log");
            chain.push((done + 1, decisions_done, cursor, blob.to_bytes()));
            if chain.len() > retain {
                chain.remove(0);
            }
        }
        assert_eq!(chain.len(), retain.min(bursts.len()));
        let log_wire = log.to_bytes();

        for (bursts_done, decided, cursor, wire) in &chain {
            let mut log = SegmentLog::from_bytes(&log_wire).expect("log decode");
            log.truncate(*cursor).expect("truncate to retained cursor");
            let blob = StateBlob::from_bytes(wire).expect("blob decode");
            let mut resumed = <CllScheduler as OnlineAlgorithm>::Run::restore_with_log(&blob, &log)
                .expect("restore with log");
            let mut decisions = Vec::new();
            for (t, jobs) in &bursts[*bursts_done..] {
                decisions.extend(resumed.on_arrivals(jobs, *t).expect("replayed burst"));
            }
            let schedule = resumed.finish().expect("replayed finish");
            // The replayed tail of the decision stream is bit-identical…
            assert_eq!(decided + decisions.len(), baseline_decisions.len());
            for (i, (a, b)) in baseline_decisions[*decided..]
                .iter()
                .zip(&decisions)
                .enumerate()
            {
                assert_eq!(
                    a.accepted, b.accepted,
                    "retain {retain}, record at burst {bursts_done}: replayed decision {i} flipped"
                );
                assert_eq!(
                    a.dual.to_bits(),
                    b.dual.to_bits(),
                    "retain {retain}, record at burst {bursts_done}: replayed dual {i} drifted"
                );
            }
            // …and so is the final schedule.
            assert_eq!(
                baseline_schedule.segments, schedule.segments,
                "retain {retain}, record at burst {bursts_done}: recovered schedule differs"
            );
        }
    }
}

#[test]
fn restored_runs_survive_the_tolerance_edge_cases() {
    // Tied deadlines, equal releases, near-zero works: the snapshots must
    // preserve the exact bit patterns these paths branch on.
    let instance = edge_instance(1, 2.0);
    let bursts = as_bursts(&instance);
    assert_restore_equivalent(
        &bursts,
        || OaScheduler.start_for(&instance).expect("OA run"),
        "restore OA (edge)",
        true,
    );
    assert_restore_equivalent(
        &bursts,
        || AvrScheduler.start_for(&instance).expect("AVR run"),
        "restore AVR (edge)",
        true,
    );
    assert_restore_equivalent(
        &bursts,
        || PdScheduler::default().start_for(&instance).expect("PD run"),
        "restore PD (edge)",
        true,
    );
    let bkp_edge = edge_instance(1, 3.0);
    let bkp_bursts = as_bursts(&bkp_edge);
    let bkp = BkpScheduler {
        resolution: 400,
        ..Default::default()
    };
    assert_restore_equivalent(
        &bkp_bursts,
        || bkp.start_for(&bkp_edge).expect("BKP run"),
        "restore BKP (edge)",
        true,
    );
}

#[test]
fn mid_burst_snapshots_round_trip_through_on_arrivals() {
    // Split every burst across a snapshot: feed the first half through
    // on_arrivals, suspend/restore, feed the rest through on_arrivals at
    // the same instant — against the same split without the restore.
    let instance = bursty_profitable(7800, 1, 2.0, 16, 4);
    let bursts = as_bursts(&instance);
    macro_rules! pin {
        ($label:expr, $make:expr) => {{
            let drive_split = |restore_mid: bool| {
                let mut run = $make;
                let mut decisions = Vec::new();
                for (t, jobs) in &bursts {
                    let half = jobs.len() / 2;
                    decisions.extend(run.on_arrivals(&jobs[..half], *t).expect("first half"));
                    if restore_mid {
                        let blob = run.snapshot();
                        run = Checkpointable::restore(&blob).expect("mid-burst restore");
                    }
                    decisions.extend(run.on_arrivals(&jobs[half..], *t).expect("second half"));
                }
                (decisions, run.finish().expect("finish"))
            };
            let (plain_decisions, plain_schedule) = drive_split(false);
            let (restored_decisions, restored_schedule) = drive_split(true);
            assert_eq!(plain_decisions, restored_decisions, "{}: decisions", $label);
            assert_eq!(
                plain_schedule.segments, restored_schedule.segments,
                "{}: segments",
                $label
            );
        }};
    }
    pin!("OA", OaScheduler.start_for(&instance).expect("OA run"));
    pin!("CLL", CllScheduler.start_for(&instance).expect("CLL run"));
    pin!("AVR", AvrScheduler.start_for(&instance).expect("AVR run"));
    pin!(
        "BKP",
        BkpScheduler {
            resolution: 400,
            ..Default::default()
        }
        .start_for(&instance)
        .expect("BKP run")
    );
    pin!(
        "PD",
        PdScheduler::default().start_for(&instance).expect("PD run")
    );
}

/// Differential pin of the ingestion daemon: a single-tenant, single-shard
/// `pss_serve::Daemon` run — pre-queued while paused so the worker drains
/// the whole stream as one backlog — is **bit-identical** to
/// `StreamingSimulation::with_coalescing` on the same instance: same dense
/// id assignment, same burst splits and feed times, same decisions and
/// duals (to the bit), same final schedule segments.  This is the daemon's
/// contract that "the queue is just another coalescing window".
#[test]
fn single_tenant_daemon_equals_streaming_simulation() {
    use pss_core::types::{JobEnvelope, TenantId};
    use pss_serve::{Daemon, ServeConfig, Submission, TenantSpec};
    use pss_sim::StreamingSimulation;

    fn pin<A>(label: &str, algo: A, instance: &Instance, window: f64)
    where
        A: OnlineAlgorithm + Clone,
        A::Run: LogCheckpointable + Send + 'static,
    {
        // Re-densify ids in arrival order so the daemon's feed-order id
        // assignment coincides with the instance's own ids.
        let inst = instance.restrict(&instance.arrival_order());
        let config = ServeConfig {
            machines: inst.machines,
            alpha: inst.alpha,
            shards: 1,
            queue_capacity: inst.len().max(2),
            coalesce_window: window,
            // The daemon coalesces over its drained backlog; draining the
            // whole pre-queued stream in one chunk makes its burst splits
            // exactly those of `coalesce_arrivals`.
            max_batch: inst.len().max(1),
            checkpoint_every: 0,
            start_paused: true,
            ..ServeConfig::default()
        };
        let (daemon, handles) =
            Daemon::spawn(algo.clone(), config, vec![TenantSpec::new("solo")]).expect("spawn");
        for job in &inst.jobs {
            let envelope = JobEnvelope::new(
                TenantId(0),
                job.id.index() as u64,
                job.release,
                job.deadline,
                job.work,
                job.value,
            );
            match handles[0].submit(envelope) {
                Ok(Submission::Queued { .. }) => {}
                other => panic!("{label}: pre-queued submission failed: {other:?}"),
            }
        }
        daemon.resume();
        let served = daemon.shutdown().expect("daemon run");
        let offline = StreamingSimulation::with_coalescing(window)
            .run(&algo, &inst)
            .expect("offline replay");

        let shard = &served.shards[0];
        assert_eq!(
            shard.events.len(),
            offline.events.len(),
            "{label}: event counts"
        );
        assert_eq!(shard.batches, offline.batches, "{label}: batch counts");
        for (daemon_ev, sim_ev) in shard.events.iter().zip(&offline.events) {
            assert_eq!(daemon_ev.job, sim_ev.job, "{label}: id assignment");
            assert_eq!(
                daemon_ev.accepted, sim_ev.accepted,
                "{label}: decision flipped for {:?}",
                sim_ev.job
            );
            assert_eq!(
                daemon_ev.dual.to_bits(),
                sim_ev.dual.to_bits(),
                "{label}: dual differs for {:?}",
                sim_ev.job
            );
        }
        assert_eq!(
            shard.schedule.segments, offline.schedule.segments,
            "{label}: schedule segments"
        );
        // The shard's fed stream reassembles into the very instance.
        let rebuilt = shard.instance(inst.machines, inst.alpha).expect("rebuild");
        assert_eq!(rebuilt.jobs, inst.jobs, "{label}: fed stream");
    }

    let poisson = poisson_profitable(9100, 1, 2.0, 40, 3.0);
    let bursty = common::bursty_poisson_profitable(9101, 1, 2.0, 48, 4, 2.0, 1e-4);
    pin("CLL window=0", CllScheduler, &poisson, 0.0);
    pin("CLL window=1e-3", CllScheduler, &bursty, 1e-3);
    pin("PD window=0", PdScheduler::coarse(), &poisson, 0.0);
    pin("PD window=1e-3", PdScheduler::coarse(), &bursty, 1e-3);
    // Multiprocessor PD through the daemon.
    let multi = profitable(9102, 3, 2.5);
    pin("PD m=3", PdScheduler::coarse(), &multi, 1e-3);
}
