//! Batch-vs-incremental equivalence property test.
//!
//! Every online algorithm in the workspace exists in two forms: the
//! independently coded *batch* reference (`PdScheduler::run`, the
//! `batch_schedule` methods of the baselines — all retained from before the
//! event-driven redesign) and the *incremental* event-driven run driven by
//! the blanket `Scheduler` adapter.  This test asserts that on random
//! workloads both paths produce identical schedules: same accept/reject
//! outcome per job, same cost, and the same machine speed profiles.
//!
//! Segment lists are *not* compared verbatim — time-sharing within an
//! interval may order jobs differently — because the schedule semantics
//! live in the speed profiles and per-job work, which are compared.

use pss_core::prelude::*;
use pss_workloads::{RandomConfig, ValueModel};

/// Compares two schedules of the same instance as schedules-proper: cost,
/// finished set, and sampled total speed profiles.
fn assert_equivalent(
    instance: &Instance,
    batch: &Schedule,
    incremental: &Schedule,
    label: &str,
    tol: f64,
) {
    let bc = batch.cost(instance);
    let ic = incremental.cost(instance);
    assert!(
        (bc.total() - ic.total()).abs() <= tol * bc.total().max(1.0),
        "{label}: cost differs — batch {} vs incremental {}",
        bc.total(),
        ic.total()
    );
    assert_eq!(
        batch.unfinished_jobs(instance),
        incremental.unfinished_jobs(instance),
        "{label}: finished sets differ"
    );
    let (lo, hi) = instance.horizon();
    if hi > lo {
        let samples = 160;
        let step = (hi - lo) / samples as f64;
        for i in 0..samples {
            let t = lo + (i as f64 + 0.5) * step;
            let b = batch.total_speed_at(t);
            let a = incremental.total_speed_at(t);
            assert!(
                (b - a).abs() <= tol * b.max(1.0),
                "{label}: speed profile differs at t={t}: batch {b} vs incremental {a}"
            );
        }
    }
}

fn profitable(seed: u64, machines: usize, alpha: f64) -> Instance {
    RandomConfig {
        n_jobs: 10,
        machines,
        alpha,
        value: ValueModel::ProportionalToEnergy { min: 0.3, max: 4.0 },
        ..RandomConfig::standard(seed)
    }
    .generate()
}

#[test]
fn pd_incremental_equals_batch_on_random_workloads() {
    for seed in 0..6u64 {
        let machines = 1 + (seed % 3) as usize;
        let alpha = 1.5 + 0.5 * (seed % 3) as f64;
        let instance = profitable(4200 + seed, machines, alpha);
        let batch = PdScheduler::default().run(&instance).expect("batch PD");
        let incremental = PdScheduler::default()
            .schedule(&instance)
            .expect("incremental PD");
        // PD's two paths run on different partitions (whole-instance vs
        // refined-on-arrival), so equality is numeric, not bitwise.
        assert_equivalent(&instance, &batch.schedule, &incremental, "PD", 1e-4);
        // Decisions must agree exactly.
        let finished = incremental.finished(&instance);
        for (j, accepted) in batch.accepted.iter().enumerate() {
            assert_eq!(*accepted, finished[j], "PD decision differs for job {j}");
        }
    }
}

#[test]
fn oa_incremental_equals_batch_on_random_workloads() {
    for seed in 0..6u64 {
        let instance = profitable(4300 + seed, 1, 2.0 + 0.5 * (seed % 3) as f64);
        let batch = OaScheduler.batch_schedule(&instance).expect("batch OA");
        let incremental = OaScheduler.schedule(&instance).expect("incremental OA");
        assert_equivalent(&instance, &batch, &incremental, "OA", 1e-9);
    }
}

#[test]
fn qoa_incremental_equals_batch_on_random_workloads() {
    for seed in 0..6u64 {
        let instance = profitable(4400 + seed, 1, 2.5);
        let algo = QoaScheduler::default();
        let batch = algo.batch_schedule(&instance).expect("batch qOA");
        let incremental = algo.schedule(&instance).expect("incremental qOA");
        assert_equivalent(&instance, &batch, &incremental, "qOA", 1e-9);
    }
}

#[test]
fn multi_oa_incremental_equals_batch_on_random_workloads() {
    for seed in 0..4u64 {
        let instance = profitable(4500 + seed, 1 + (seed % 3) as usize, 2.5);
        let algo = MultiOaScheduler::default();
        let batch = algo.batch_schedule(&instance).expect("batch OA(m)");
        let incremental = algo.schedule(&instance).expect("incremental OA(m)");
        assert_equivalent(&instance, &batch, &incremental, "OA(m)", 1e-9);
    }
}

#[test]
fn avr_incremental_equals_batch_on_random_workloads() {
    for seed in 0..6u64 {
        let instance = profitable(4600 + seed, 1, 2.0);
        let batch = AvrScheduler.batch_schedule(&instance).expect("batch AVR");
        let incremental = AvrScheduler.schedule(&instance).expect("incremental AVR");
        assert_equivalent(&instance, &batch, &incremental, "AVR", 1e-9);
        // AVR also guarantees identical per-job work.
        let bw = batch.work_per_job(instance.len());
        let iw = incremental.work_per_job(instance.len());
        for j in 0..instance.len() {
            assert!(
                (bw[j] - iw[j]).abs() < 1e-9,
                "AVR work differs for job {j}: {} vs {}",
                bw[j],
                iw[j]
            );
        }
    }
}

#[test]
fn bkp_incremental_equals_batch_on_random_workloads() {
    for seed in 0..4u64 {
        let instance = profitable(4700 + seed, 1, 3.0);
        // A moderate grid keeps the test fast; the comparison is
        // grid-for-grid so the resolution does not affect equality.
        let algo = BkpScheduler {
            resolution: 800,
            ..Default::default()
        };
        let batch = algo.batch_schedule(&instance).expect("batch BKP");
        let incremental = algo.schedule(&instance).expect("incremental BKP");
        assert_equivalent(&instance, &batch, &incremental, "BKP", 1e-6);
    }
}

#[test]
fn cll_incremental_equals_batch_on_random_workloads() {
    for seed in 0..6u64 {
        let instance = profitable(4800 + seed, 1, 2.0);
        let batch = CllScheduler.batch_schedule(&instance).expect("batch CLL");
        let incremental = CllScheduler.schedule(&instance).expect("incremental CLL");
        assert_equivalent(&instance, &batch, &incremental, "CLL", 1e-9);
    }
}
