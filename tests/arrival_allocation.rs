//! Micro-test: the warm arrival paths allocate `O(active set)` per arrival,
//! independent of how long the stream has been running.
//!
//! PR 2/3 replaced the per-arrival full-history rebuilds (fresh
//! `Instance`/`ProgramContext` clones in PD, from-scratch YDS solves in the
//! replanning executor, full job-history scans in AVR/BKP) with persistent
//! indices maintained across arrivals.  The remaining per-arrival work —
//! pending-set snapshots for the planner, the plan itself, the committed
//! segment — is bounded by the *active* set, not the stream length.  This
//! test pins that property operationally: it feeds a long Poisson stream
//! with a bounded active set through the incremental runs and asserts that
//! the number of allocations per arrival does not grow between an early and
//! a late window of the stream (a full-history clone per arrival would make
//! the late window's allocation count scale with the history size).
//!
//! Everything lives in a single `#[test]` because the counting allocator is
//! a process-wide global.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

mod common;

use pss_core::baselines::oa::OaPlanner;
use pss_core::baselines::replan::{AdmitAll, OnlineEnv, ReplanState};
use pss_core::prelude::*;

/// Counts every allocation and reallocation (not bytes: a doubling realloc
/// of a long-lived buffer is amortised-O(1) per arrival and counts once).
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A Poisson stream with a bounded active set (~10 pending jobs at a time).
fn stream(n: usize, seed: u64) -> Instance {
    common::poisson_profitable(seed, 1, 2.5, n, 4.0)
}

/// Feeds the whole stream to `run`, returning the allocation counts of the
/// arrival windows `[lo, lo+len)` and `[hi, hi+len)` and the largest
/// pending-set size observed (via `peek`, called after every arrival).
fn windows<R: OnlineScheduler>(
    run: &mut R,
    instance: &Instance,
    (lo, hi, len): (usize, usize, usize),
    mut peek: impl FnMut(&R) -> usize,
) -> (usize, usize, usize) {
    let (mut early, mut late, mut max_pending) = (0usize, 0usize, 0usize);
    for (i, id) in instance.arrival_order().into_iter().enumerate() {
        let job = instance.job(id);
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        run.on_arrival(job, job.release).expect("arrival");
        let spent = ALLOCATIONS.load(Ordering::Relaxed) - before;
        if (lo..lo + len).contains(&i) {
            early += spent;
        } else if (hi..hi + len).contains(&i) {
            late += spent;
        }
        max_pending = max_pending.max(peek(run));
    }
    (early, late, max_pending)
}

fn assert_flat(label: &str, early: usize, late: usize) {
    // A full-history clone per arrival would make `late` scale with the
    // ~4x larger history; genuine per-arrival work is active-set-bounded
    // and stays put.  The slack absorbs occasional buffer doublings.
    assert!(
        late <= 2 * early + 64,
        "{label}: allocations grew with the stream — {early} in the early \
         window vs {late} in the late window"
    );
}

#[test]
fn incremental_arrival_paths_do_not_allocate_with_history_size() {
    let n = 2000;
    let instance = stream(n, 8600);
    let windows_spec = (300usize, 1600usize, 200usize);

    // OA through the warm replanning executor: the satellite audit target.
    let mut oa = ReplanState::new(
        OaPlanner { speed_factor: 1.0 },
        AdmitAll,
        OnlineEnv {
            machines: 1,
            alpha: instance.alpha,
        },
    );
    let (early, late, max_pending) =
        windows(&mut oa, &instance, windows_spec, |run| run.pending().len());
    assert_flat("OA warm replans", early, late);
    assert!(
        max_pending <= 64,
        "OA pending set not bounded by the active set: {max_pending}"
    );

    // AVR through the active-set index.
    let mut avr = AvrScheduler.start_for(&instance).expect("AVR run");
    let (early, late, _) = windows(&mut avr, &instance, windows_spec, |_| 0);
    assert_flat("AVR indexed commits", early, late);

    // BKP through the resident speed index and lazy EDF heap.
    let bkp = BkpScheduler::default();
    let mut run = bkp.start_for(&instance).expect("BKP run");
    let (early, late, _) = windows(&mut run, &instance, windows_spec, |_| 0);
    assert_flat("BKP indexed grid", early, late);

    // Burst ingestion: with the replan shared by the whole burst, the
    // allocation count *per arrival* must not grow with the burst size b —
    // a batch path that secretly re-planned per job would scale ~b-fold.
    let per_arrival = |b: usize, seed: u64| -> usize {
        let inst = common::bursty_poisson_profitable(seed, 1, 2.5, n, b, 4.0 / b as f64, 0.0);
        // Group the stream into its equal-release bursts up front, so the
        // measurement covers only the ingestion calls.
        let mut bursts: Vec<(f64, Vec<Job>)> = Vec::new();
        for id in inst.arrival_order() {
            let job = *inst.job(id);
            match bursts.last_mut() {
                Some((t, jobs)) if job.release == *t => jobs.push(job),
                _ => bursts.push((job.release, vec![job])),
            }
        }
        let mut run = ReplanState::new(
            OaPlanner { speed_factor: 1.0 },
            AdmitAll,
            OnlineEnv {
                machines: 1,
                alpha: inst.alpha,
            },
        );
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for (t, jobs) in &bursts {
            run.on_arrivals(jobs, *t).expect("burst");
        }
        (ALLOCATIONS.load(Ordering::Relaxed) - before) / n
    };
    let at_b4 = per_arrival(4, 8700);
    let at_b16 = per_arrival(16, 8701);
    assert!(
        at_b16 <= at_b4 + at_b4 / 2 + 8,
        "OA burst ingestion allocations grew with b: {at_b4}/arrival at b=4 \
         vs {at_b16}/arrival at b=16"
    );
}
