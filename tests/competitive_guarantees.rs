//! Competitive-guarantee integration tests: the paper's Theorem 3 and the
//! baselines' known guarantees, checked against the exact (brute force)
//! optimum on many small random instances.

mod common;

use pss_core::prelude::*;
use pss_offline::brute_force_optimum;
use pss_workloads::staircase_instance;

fn sweep(machines: usize, alpha: f64, seeds: std::ops::Range<u64>) -> Vec<Instance> {
    seeds
        .map(|seed| common::profitable_values(900 + seed, machines, alpha, 9, 0.2, 4.0))
        .collect()
}

#[test]
fn pd_is_within_alpha_alpha_of_the_exact_optimum() {
    for &(m, alpha) in &[(1usize, 1.5), (1, 2.0), (1, 3.0), (2, 2.0), (3, 2.5)] {
        let bound = AlphaPower::new(alpha).competitive_ratio_pd();
        for instance in sweep(m, alpha, 0..4) {
            let opt = brute_force_optimum(&instance)
                .expect("brute force")
                .cost
                .total();
            let pd = PdScheduler::default()
                .schedule(&instance)
                .expect("PD")
                .cost(&instance)
                .total();
            assert!(
                pd <= bound * opt + 1e-6,
                "m={m}, alpha={alpha}: PD {pd} > {bound} * OPT {opt}"
            );
            assert!(pd + 1e-9 >= opt, "PD beat the optimum?!");
        }
    }
}

#[test]
fn cll_is_within_its_published_bound_of_the_optimum() {
    let alpha = 2.0;
    let bound = AlphaPower::new(alpha).competitive_ratio_cll();
    for instance in sweep(1, alpha, 10..14) {
        let opt = brute_force_optimum(&instance)
            .expect("brute force")
            .cost
            .total();
        let cll = CllScheduler
            .schedule(&instance)
            .expect("CLL")
            .cost(&instance)
            .total();
        assert!(cll <= bound * opt + 1e-6, "CLL {cll} > {bound} * OPT {opt}");
    }
}

#[test]
fn dual_bound_never_exceeds_the_exact_optimum() {
    for &(m, alpha) in &[(1usize, 2.0), (2, 2.5), (3, 3.0)] {
        for instance in sweep(m, alpha, 20..23) {
            let run = PdScheduler::default().run(&instance).expect("PD run");
            let analysis = analyze_run(&run);
            let opt = brute_force_optimum(&instance)
                .expect("brute force")
                .cost
                .total();
            assert!(
                analysis.dual.value <= opt + 1e-6,
                "m={m}, alpha={alpha}: dual {} > OPT {opt}",
                analysis.dual.value
            );
        }
    }
}

#[test]
fn staircase_ratio_is_monotone_and_bounded() {
    let alpha = 2.0;
    let bound = AlphaPower::new(alpha).competitive_ratio_pd();
    let mut prev = 0.0;
    for n in [2usize, 4, 8, 16, 32] {
        let instance = staircase_instance(n, alpha, 1e9);
        let pd = PdScheduler::default()
            .schedule(&instance)
            .expect("PD")
            .cost(&instance)
            .total();
        let opt = YdsScheduler
            .schedule(&instance)
            .expect("YDS")
            .cost(&instance)
            .total();
        let ratio = pd / opt;
        assert!(
            ratio <= bound + 1e-6,
            "n={n}: ratio {ratio} exceeds {bound}"
        );
        assert!(
            ratio + 1e-6 >= prev,
            "n={n}: ratio decreased ({prev} -> {ratio})"
        );
        prev = ratio;
    }
    // By n = 32 the ratio should already be well above the trivial 1.0,
    // showing the bound is not vacuous.
    assert!(prev > 1.5, "staircase ratio stayed near 1: {prev}");
}

#[test]
fn rejecting_everything_and_accepting_everything_bracket_pd() {
    for instance in sweep(2, 2.0, 30..33) {
        let pd = PdScheduler::default()
            .schedule(&instance)
            .expect("PD")
            .cost(&instance)
            .total();
        let reject_all = instance.total_value();
        // PD never does worse than alpha^alpha times the better of the two
        // trivial strategies (both are feasible, so both upper-bound OPT).
        let finish_all = MinEnergyScheduler::default()
            .schedule(&instance)
            .expect("finish everything")
            .cost(&instance)
            .total();
        let trivial_best = reject_all.min(finish_all);
        let bound = AlphaPower::new(instance.alpha).competitive_ratio_pd();
        assert!(pd <= bound * trivial_best + 1e-6);
    }
}
