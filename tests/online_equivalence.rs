//! Online-behaviour integration tests: the event-driven PD (with interval
//! refinement) matches the batch PD, and the online algorithms never revise
//! the past when new jobs arrive.

use pss_core::prelude::*;
use pss_sim::prefix_stability_report;
use pss_workloads::{RandomConfig, ValueModel};

fn instances() -> Vec<Instance> {
    (0..4u64)
        .map(|seed| {
            RandomConfig {
                n_jobs: 12,
                machines: if seed % 2 == 0 { 1 } else { 3 },
                alpha: 2.0 + 0.5 * (seed % 3) as f64,
                value: ValueModel::ProportionalToEnergy { min: 0.3, max: 4.0 },
                ..RandomConfig::standard(500 + seed)
            }
            .generate()
        })
        .collect()
}

#[test]
fn online_pd_matches_batch_pd_decisions_and_cost() {
    for instance in instances() {
        let batch = PdScheduler::default().run(&instance).expect("batch PD");
        let mut online = OnlinePd::new(instance.machines, instance.alpha);
        for id in instance.arrival_order() {
            let accepted = online.arrive(instance.job(id)).expect("online arrival");
            assert_eq!(
                accepted,
                batch.accepted[id.index()],
                "decision mismatch for {id} (alpha {})",
                instance.alpha
            );
        }
        let online_cost = online.schedule().expect("online schedule").cost(&instance);
        let batch_cost = batch.schedule.cost(&instance);
        assert!(
            (online_cost.total() - batch_cost.total()).abs()
                < 1e-5 * batch_cost.total().max(1.0),
            "cost mismatch: online {} vs batch {}",
            online_cost.total(),
            batch_cost.total()
        );
    }
}

#[test]
fn pd_never_revises_the_past() {
    for instance in instances() {
        let report = prefix_stability_report(&PdScheduler::default(), &instance, 48)
            .expect("prefix replay");
        assert!(
            report.is_online(1e-5),
            "PD revised the past: max deviation {}",
            report.max_deviation
        );
    }
}

#[test]
fn oa_and_cll_never_revise_the_past() {
    let instance = RandomConfig {
        n_jobs: 10,
        machines: 1,
        alpha: 2.0,
        value: ValueModel::ProportionalToEnergy { min: 0.3, max: 4.0 },
        ..RandomConfig::standard(321)
    }
    .generate();
    for algo in [&OaScheduler as &dyn Scheduler, &CllScheduler as &dyn Scheduler] {
        let report = prefix_stability_report(&algo, &instance, 48).expect("prefix replay");
        assert!(
            report.is_online(1e-5),
            "{} revised the past: {}",
            algo.name(),
            report.max_deviation
        );
    }
}

#[test]
fn online_pd_schedule_is_feasible_for_the_full_instance() {
    for instance in instances() {
        let schedule = OnlinePd::run_instance(&instance).expect("online run");
        validate_schedule(&instance, &schedule).expect("online schedule is feasible");
    }
}
