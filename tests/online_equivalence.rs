//! Online-behaviour integration tests: the event-driven PD (with interval
//! refinement) matches the batch PD, and the online algorithms never revise
//! the past when new jobs arrive.
//!
//! Prefix stability is verified with the *streaming* replay harness: one
//! incremental run per algorithm, whose committed frontier is sampled as
//! arrivals are processed — no per-checkpoint re-solves.

mod common;

use pss_core::prelude::*;
use pss_sim::{streaming_prefix_report, StreamingSimulation};

fn instances() -> Vec<Instance> {
    (0..4u64)
        .map(|seed| {
            common::profitable_n(
                500 + seed,
                if seed % 2 == 0 { 1 } else { 3 },
                2.0 + 0.5 * (seed % 3) as f64,
                12,
            )
        })
        .collect()
}

#[test]
fn online_pd_matches_batch_pd_decisions_and_cost() {
    for instance in instances() {
        let batch = PdScheduler::default().run(&instance).expect("batch PD");
        let mut online = OnlinePd::new(instance.machines, instance.alpha);
        for id in instance.arrival_order() {
            let accepted = online.arrive(instance.job(id)).expect("online arrival");
            assert_eq!(
                accepted,
                batch.accepted[id.index()],
                "decision mismatch for {id} (alpha {})",
                instance.alpha
            );
        }
        let online_cost = online.schedule().expect("online schedule").cost(&instance);
        let batch_cost = batch.schedule.cost(&instance);
        assert!(
            (online_cost.total() - batch_cost.total()).abs() < 1e-5 * batch_cost.total().max(1.0),
            "cost mismatch: online {} vs batch {}",
            online_cost.total(),
            batch_cost.total()
        );
    }
}

#[test]
fn on_arrival_decisions_report_pd_duals() {
    for instance in instances() {
        let batch = PdScheduler::default().run(&instance).expect("batch PD");
        let mut run = PdScheduler::default()
            .start_for(&instance)
            .expect("start run");
        for id in instance.arrival_order() {
            let job = instance.job(id);
            let decision = run.on_arrival(job, job.release).expect("arrival");
            assert_eq!(decision.accepted, batch.accepted[id.index()]);
            assert!(
                (decision.dual - batch.lambda[id.index()]).abs()
                    < 1e-6 * batch.lambda[id.index()].max(1.0),
                "dual mismatch for {id}: online {} vs batch {}",
                decision.dual,
                batch.lambda[id.index()]
            );
        }
    }
}

#[test]
fn pd_never_revises_the_past() {
    for instance in instances() {
        let report = streaming_prefix_report(&PdScheduler::default(), &instance, 48)
            .expect("streaming replay");
        assert!(
            report.is_online(1e-5),
            "PD revised the past: max deviation {}",
            report.max_deviation
        );
    }
}

#[test]
fn baselines_never_revise_the_past() {
    let instance = common::profitable(321, 1, 2.0);
    let oa = streaming_prefix_report(&OaScheduler, &instance, 48).expect("OA replay");
    assert!(
        oa.is_online(1e-5),
        "OA revised the past: {}",
        oa.max_deviation
    );
    let cll = streaming_prefix_report(&CllScheduler, &instance, 48).expect("CLL replay");
    assert!(
        cll.is_online(1e-5),
        "CLL revised the past: {}",
        cll.max_deviation
    );
    let avr = streaming_prefix_report(&AvrScheduler, &instance, 48).expect("AVR replay");
    assert!(
        avr.is_online(1e-9),
        "AVR revised the past: {}",
        avr.max_deviation
    );
    let bkp = streaming_prefix_report(&BkpScheduler::default(), &instance, 48).expect("BKP replay");
    assert!(
        bkp.is_online(1e-5),
        "BKP revised the past: {}",
        bkp.max_deviation
    );
}

#[test]
fn online_pd_schedule_is_feasible_for_the_full_instance() {
    for instance in instances() {
        let schedule = OnlinePd::run_instance(&instance).expect("online run");
        validate_schedule(&instance, &schedule).expect("online schedule is feasible");
    }
}

#[test]
fn streaming_simulation_agrees_with_the_batch_adapter() {
    for instance in instances() {
        let stream = StreamingSimulation::default()
            .run(&PdScheduler::default(), &instance)
            .expect("streaming run");
        let batch = PdScheduler::default()
            .schedule(&instance)
            .expect("batch adapter")
            .cost(&instance)
            .total();
        assert!(
            (stream.total_cost() - batch).abs() < 1e-6 * batch.max(1.0),
            "stream {} vs batch {batch}",
            stream.total_cost()
        );
        assert_eq!(stream.events.len(), instance.len());
    }
}
